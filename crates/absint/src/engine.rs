//! The worklist-based forward dataflow engine over [`rsc_ssa::Cfg`].
//!
//! For each function unit the engine computes, per basic block, the
//! abstract environment holding at block entry: a map from SSA variable
//! to [`AbsVal`]. Iteration is reverse-postorder with widening at loop
//! heads (ascending phase) followed by a bounded number of narrowing
//! passes (descending phase) to recover bounds the widening discarded.
//!
//! Branch conditions are folded in along CFG *edges* ([`Edge::assume`]),
//! so facts are path-sensitive: inside `if (0 < x)` the engine knows
//! `x ≥ 1`. φ-copies also live on edges; transferring an edge renames
//! the incoming values into the join's φ-variables.
//!
//! The engine never errs: an unreachable block simply keeps no
//! environment, and every unknown expression evaluates to ⊤.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rsc_logic::Sym;
use rsc_ssa::{Body, Cfg, Edge, IrExpr, IrFun, IrProgram, Stmt};
use rsc_syntax::ast::{BinOpE, UnOp};

use crate::domain::{AbsVal, Congruence, Interval, Nullness, Truth};

/// Number of descending (narrowing) passes after the ascending fixpoint.
const NARROWING_PASSES: usize = 2;

/// An abstract environment: per-variable facts. Absent variables are ⊤.
#[derive(Clone, Debug, Default)]
pub struct AbsEnv {
    vals: HashMap<Sym, AbsVal>,
    /// The whole environment is unreachable.
    unreachable: bool,
}

impl AbsEnv {
    /// The fact for `x` (⊤ when untracked).
    pub fn get(&self, x: &Sym) -> AbsVal {
        self.vals.get(x).copied().unwrap_or(AbsVal::TOP)
    }

    /// Records a fact (⊤ facts are dropped to keep the map small).
    pub fn set(&mut self, x: Sym, v: AbsVal) {
        if v == AbsVal::TOP {
            self.vals.remove(&x);
        } else {
            if v.bottom {
                self.unreachable = true;
            }
            self.vals.insert(x, v);
        }
    }

    /// True when the program point carrying this environment cannot be
    /// reached (some fact collapsed to ⊥).
    pub fn is_unreachable(&self) -> bool {
        self.unreachable
    }

    /// Pointwise join; variables absent on either side become ⊤.
    fn join(&self, other: &AbsEnv) -> AbsEnv {
        if self.unreachable {
            return other.clone();
        }
        if other.unreachable {
            return self.clone();
        }
        let mut vals = HashMap::new();
        for (x, a) in &self.vals {
            if let Some(b) = other.vals.get(x) {
                let j = a.join(b);
                if j != AbsVal::TOP {
                    vals.insert(x.clone(), j);
                }
            }
        }
        AbsEnv {
            vals,
            unreachable: false,
        }
    }

    /// Pointwise widening against the new value at a loop head.
    fn widen(&self, next: &AbsEnv) -> AbsEnv {
        if self.unreachable {
            return next.clone();
        }
        if next.unreachable {
            return self.clone();
        }
        let mut vals = HashMap::new();
        for (x, a) in &self.vals {
            if let Some(b) = next.vals.get(x) {
                let w = a.widen(b);
                if w != AbsVal::TOP {
                    vals.insert(x.clone(), w);
                }
            }
        }
        AbsEnv {
            vals,
            unreachable: false,
        }
    }

    /// Pointwise narrowing in the descending phase.
    fn narrow(&self, next: &AbsEnv) -> AbsEnv {
        if self.unreachable || next.unreachable {
            return self.clone();
        }
        let mut out = self.clone();
        for (x, a) in &self.vals {
            if let Some(b) = next.vals.get(x) {
                out.vals.insert(x.clone(), a.narrow(b));
            }
        }
        out
    }

    fn same_as(&self, other: &AbsEnv) -> bool {
        self.unreachable == other.unreachable && self.vals == other.vals
    }
}

/// The analysis result for one function unit: per-block entry
/// environments (`None` = unreachable), aligned with the block ids of
/// `Cfg::build` on the same body, plus the flow-insensitive per-SSA-value
/// summary (each SSA variable's fact at its definition point).
#[derive(Clone, Debug, Default)]
pub struct BodyFacts {
    /// Entry environment per block id.
    pub entries: Vec<Option<AbsEnv>>,
    /// Per-SSA-value facts at the definition point.
    pub defs: HashMap<Sym, AbsVal>,
}

/// Per-program facts: one [`BodyFacts`] worth of per-value summaries for
/// every function unit, merged by name (facts join on collision — only
/// the `x$N`-suffixed SSA temporaries are globally unique).
#[derive(Clone, Debug, Default)]
pub struct ProgramFacts {
    /// Joined per-SSA-value facts across all units.
    pub values: BTreeMap<Sym, AbsVal>,
    /// Number of function units analyzed (including the top level).
    pub units: usize,
}

/// Evaluates an expression in an environment. ⊤ for anything the
/// domains do not model.
pub fn eval(e: &IrExpr, env: &AbsEnv) -> AbsVal {
    match e {
        IrExpr::Var(x, _) => env.get(x),
        IrExpr::Num(n, _) => AbsVal::int(*n),
        IrExpr::Bool(b, _) => AbsVal::bool(*b),
        IrExpr::Null(_) | IrExpr::Undefined(_) => AbsVal::null(),
        IrExpr::Str(..) | IrExpr::Bv(..) | IrExpr::This(_) => AbsVal::TOP,
        IrExpr::ArrayLit(es, _) => AbsVal::non_null(Interval::exact(es.len() as i64)),
        IrExpr::New(..) => AbsVal::non_null(Interval::TOP),
        IrExpr::Cast(_, inner, _) => eval(inner, env),
        IrExpr::Field(base, f, _) if f.as_str() == "length" => {
            // Arrays are fixed-length in this model, so `a.length` is
            // exactly the `len` component of `a`.
            let b = eval(base, env);
            AbsVal {
                itv: b.len,
                ..AbsVal::TOP
            }
        }
        IrExpr::Field(..)
        | IrExpr::Index(..)
        | IrExpr::Call(..)
        | IrExpr::FieldAssign(..)
        | IrExpr::IndexAssign(..) => AbsVal::TOP,
        IrExpr::Unary(op, a, _) => {
            let va = eval(a, env);
            match op {
                UnOp::Not => AbsVal {
                    truth: va.truth.not(),
                    ..AbsVal::TOP
                },
                UnOp::Neg => AbsVal {
                    itv: va.itv.neg(),
                    cong: va.cong.mul_const(-1),
                    ..AbsVal::TOP
                }
                .reduce(),
                UnOp::TypeOf => AbsVal::TOP,
            }
        }
        IrExpr::Binary(op, a, b, _) => {
            let va = eval(a, env);
            let vb = eval(b, env);
            eval_bin(*op, &va, &vb)
        }
    }
}

fn eval_bin(op: BinOpE, a: &AbsVal, b: &AbsVal) -> AbsVal {
    let truth_of = |t: Truth| AbsVal {
        truth: t,
        ..AbsVal::TOP
    };
    match op {
        BinOpE::Add => AbsVal {
            itv: a.itv.add(&b.itv),
            cong: a.cong.add(&b.cong),
            ..AbsVal::TOP
        }
        .reduce(),
        BinOpE::Sub => AbsVal {
            itv: a.itv.sub(&b.itv),
            cong: a.cong.add(&b.cong.mul_const(-1)),
            ..AbsVal::TOP
        }
        .reduce(),
        BinOpE::Mul => {
            if let Some(k) = a.itv.as_const() {
                AbsVal {
                    itv: b.itv.mul_const(k),
                    cong: b.cong.mul_const(k),
                    ..AbsVal::TOP
                }
                .reduce()
            } else if let Some(k) = b.itv.as_const() {
                AbsVal {
                    itv: a.itv.mul_const(k),
                    cong: a.cong.mul_const(k),
                    ..AbsVal::TOP
                }
                .reduce()
            } else {
                AbsVal::TOP
            }
        }
        BinOpE::Div => match (a.itv.as_const(), b.itv.as_const()) {
            (Some(x), Some(y)) if y != 0 => AbsVal::int(x.wrapping_div(y)),
            _ => AbsVal::TOP,
        },
        BinOpE::Mod => match (a.itv.as_const(), b.itv.as_const()) {
            (Some(x), Some(y)) if y != 0 => AbsVal::int(x.wrapping_rem(y)),
            (_, Some(m)) if m > 0 && matches!(a.itv.lo, Some(l) if l >= 0) => {
                // Non-negative dividend: `x % m ∈ [0, m-1]`, and the
                // result is bounded by the dividend itself.
                AbsVal {
                    itv: Interval {
                        lo: Some(0),
                        hi: Some(m - 1),
                    }
                    .meet(&Interval {
                        lo: Some(0),
                        hi: a.itv.hi,
                    }),
                    ..AbsVal::TOP
                }
                .reduce()
            }
            _ => AbsVal::TOP,
        },
        BinOpE::Lt => truth_of(cmp_truth(&a.itv, &b.itv, &a.cong, &b.cong, CmpKind::Lt)),
        BinOpE::Le => truth_of(cmp_truth(&a.itv, &b.itv, &a.cong, &b.cong, CmpKind::Le)),
        BinOpE::Gt => truth_of(cmp_truth(&b.itv, &a.itv, &b.cong, &a.cong, CmpKind::Lt)),
        BinOpE::Ge => truth_of(cmp_truth(&b.itv, &a.itv, &b.cong, &a.cong, CmpKind::Le)),
        BinOpE::Eq => truth_of(eq_truth(a, b)),
        BinOpE::Ne => truth_of(eq_truth(a, b).not()),
        BinOpE::And => truth_of(match (a.truth, b.truth) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Top,
        }),
        BinOpE::Or => truth_of(match (a.truth, b.truth) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Top,
        }),
        BinOpE::BitAnd | BinOpE::BitOr => AbsVal::TOP,
    }
}

enum CmpKind {
    Lt,
    Le,
}

fn cmp_truth(
    a: &Interval,
    b: &Interval,
    _ca: &Congruence,
    _cb: &Congruence,
    kind: CmpKind,
) -> Truth {
    match kind {
        CmpKind::Lt => {
            if a.definitely_lt(b) {
                Truth::True
            } else if b.definitely_le(a) {
                Truth::False
            } else {
                Truth::Top
            }
        }
        CmpKind::Le => {
            if a.definitely_le(b) {
                Truth::True
            } else if b.definitely_lt(a) {
                Truth::False
            } else {
                Truth::Top
            }
        }
    }
}

/// Truth of `a == b` — intervals decide most cases; disjoint congruence
/// classes (e.g. even vs. odd) decide the rest. Congruence feeding a
/// *lint-visible* truth value is fine: lints never discharge
/// obligations.
fn eq_truth(a: &AbsVal, b: &AbsVal) -> Truth {
    if let (Some(x), Some(y)) = (a.itv.as_const(), b.itv.as_const()) {
        return if x == y { Truth::True } else { Truth::False };
    }
    if a.itv.definitely_ne(&b.itv) || congruence_disjoint(&a.cong, &b.cong) {
        return Truth::False;
    }
    match (a.truth, b.truth) {
        (Truth::True, Truth::False) | (Truth::False, Truth::True) => Truth::False,
        (Truth::True, Truth::True) | (Truth::False, Truth::False) => Truth::True,
        _ => match (a.null, b.null) {
            (Nullness::NonNull, Nullness::Null) | (Nullness::Null, Nullness::NonNull) => {
                Truth::False
            }
            _ => Truth::Top,
        },
    }
}

/// True when no integer satisfies both congruences (CRT solvability).
fn congruence_disjoint(a: &Congruence, b: &Congruence) -> bool {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    match (a.modulus, b.modulus) {
        (1, _) | (_, 1) => false,
        (0, 0) => a.rem != b.rem,
        (0, m) | (m, 0) => {
            let (c, modular) = if a.modulus == 0 {
                (a.rem, b)
            } else {
                (b.rem, a)
            };
            let _ = m;
            !modular.admits(c)
        }
        (m1, m2) => {
            let g = gcd(m1, m2);
            !a.rem.abs_diff(b.rem).is_multiple_of(g)
        }
    }
}

/// Refines `env` under the assumption that `cond` evaluates to
/// `polarity`. Only shapes the domains model produce refinements; the
/// result's `unreachable` flag is set when the assumption is infeasible.
pub fn assume(env: &mut AbsEnv, cond: &IrExpr, polarity: bool) {
    match cond {
        IrExpr::Var(x, _) => {
            let mut v = env.get(x);
            let want = if polarity { Truth::True } else { Truth::False };
            if v.truth != Truth::Top && v.truth != want {
                env.unreachable = true;
                return;
            }
            v.truth = want;
            if polarity {
                // Truthy: non-null reference, non-zero integer.
                if v.null == Nullness::Null {
                    env.unreachable = true;
                    return;
                }
                v.null = Nullness::NonNull;
                if v.itv.lo == Some(0) {
                    v.itv.lo = Some(1);
                } else if v.itv.hi == Some(0) {
                    v.itv.hi = Some(-1);
                }
            } else {
                // Falsy: for integers this pins 0; for references it
                // pins null/undefined; other components stay untouched
                // (they are meaningless for the variable's actual type).
                v.itv = v.itv.meet(&Interval::exact(0));
            }
            let v = v.reduce();
            if v.bottom {
                env.unreachable = true;
            } else {
                env.set(x.clone(), v);
            }
        }
        IrExpr::Unary(UnOp::Not, inner, _) => assume(env, inner, !polarity),
        IrExpr::Cast(_, inner, _) => assume(env, inner, polarity),
        IrExpr::Binary(op, a, b, _) => {
            let flipped = |o: BinOpE| match o {
                BinOpE::Lt => Some(BinOpE::Ge),
                BinOpE::Le => Some(BinOpE::Gt),
                BinOpE::Gt => Some(BinOpE::Le),
                BinOpE::Ge => Some(BinOpE::Lt),
                BinOpE::Eq => Some(BinOpE::Ne),
                BinOpE::Ne => Some(BinOpE::Eq),
                _ => None,
            };
            let (op, pol) = if polarity {
                (*op, true)
            } else if let Some(f) = flipped(*op) {
                (f, true)
            } else {
                (*op, false)
            };
            if !pol {
                // `!(a && b)` etc. — no refinement.
                return;
            }
            match op {
                BinOpE::Lt => assume_rel(env, a, b, RelKind::Lt),
                BinOpE::Le => assume_rel(env, a, b, RelKind::Le),
                BinOpE::Gt => assume_rel(env, b, a, RelKind::Lt),
                BinOpE::Ge => assume_rel(env, b, a, RelKind::Le),
                BinOpE::Eq => assume_eq(env, a, b, true),
                BinOpE::Ne => assume_eq(env, a, b, false),
                BinOpE::And => {
                    assume(env, a, true);
                    assume(env, b, true);
                }
                _ => {}
            }
        }
        _ => {}
    }
}

enum RelKind {
    Lt,
    Le,
}

/// Assumes `a < b` / `a ≤ b`, refining variable operands.
fn assume_rel(env: &mut AbsEnv, a: &IrExpr, b: &IrExpr, kind: RelKind) {
    let va = eval(a, env);
    let vb = eval(b, env);
    let off = match kind {
        RelKind::Lt => 1,
        RelKind::Le => 0,
    };
    if let IrExpr::Var(x, _) = a {
        if let Some(hi) = vb.itv.hi {
            let mut v = env.get(x);
            v.itv = v.itv.meet(&Interval::at_most(hi.saturating_sub(off)));
            let v = v.reduce();
            if v.bottom {
                env.unreachable = true;
                return;
            }
            env.set(x.clone(), v);
        }
    }
    if let IrExpr::Var(y, _) = b {
        if let Some(lo) = va.itv.lo {
            let mut v = env.get(y);
            v.itv = v.itv.meet(&Interval::at_least(lo.saturating_add(off)));
            let v = v.reduce();
            if v.bottom {
                env.unreachable = true;
                return;
            }
            env.set(y.clone(), v);
        }
    }
}

/// Assumes `a == b` (`eq = true`) or `a != b` (`eq = false`).
fn assume_eq(env: &mut AbsEnv, a: &IrExpr, b: &IrExpr, eq: bool) {
    let null_lit = |e: &IrExpr| matches!(e, IrExpr::Null(_) | IrExpr::Undefined(_));
    match (a, b) {
        (IrExpr::Var(x, _), e) | (e, IrExpr::Var(x, _)) if null_lit(e) => {
            let mut v = env.get(x);
            if eq {
                if v.null == Nullness::NonNull {
                    env.unreachable = true;
                    return;
                }
                v.null = Nullness::Null;
                env.set(x.clone(), v);
            }
            // `x != null` does NOT make x non-null: it may still be
            // `undefined` (and vice versa). No refinement.
        }
        _ if eq => {
            // x == e: meet x with e's value (and symmetrically).
            let va = eval(a, env);
            let vb = eval(b, env);
            let m = va.meet(&vb);
            if m.bottom {
                env.unreachable = true;
                return;
            }
            if let IrExpr::Var(x, _) = a {
                env.set(x.clone(), m);
            }
            if let IrExpr::Var(y, _) = b {
                env.set(y.clone(), m);
            }
        }
        _ => {
            // x != e with e an exact constant: endpoint shaving.
            let va = eval(a, env);
            let vb = eval(b, env);
            let shave = |env: &mut AbsEnv, x: &Sym, k: i64| {
                let mut v = env.get(x);
                if v.itv.lo == Some(k) {
                    v.itv.lo = k.checked_add(1);
                } else if v.itv.hi == Some(k) {
                    v.itv.hi = k.checked_sub(1);
                }
                let v = v.reduce();
                if v.bottom {
                    env.unreachable = true;
                } else {
                    env.set(x.clone(), v);
                }
            };
            if let (IrExpr::Var(x, _), Some(k)) = (a, vb.itv.as_const()) {
                shave(env, x, k);
            }
            if env.unreachable {
                return;
            }
            if let (IrExpr::Var(y, _), Some(k)) = (b, va.itv.as_const()) {
                shave(env, y, k);
            }
        }
    }
}

/// Transfers one block's statements over `env` (in place).
fn transfer_block(block_stmts: &[Stmt<'_>], env: &mut AbsEnv, defs: &mut HashMap<Sym, AbsVal>) {
    for s in block_stmts {
        if let Stmt::Let { x, rhs, .. } = s {
            let v = eval(rhs, env);
            record_def(defs, x, v);
            env.set((*x).clone(), v);
        }
    }
}

fn record_def(defs: &mut HashMap<Sym, AbsVal>, x: &Sym, v: AbsVal) {
    match defs.get_mut(x) {
        Some(old) => *old = old.join(&v),
        None => {
            defs.insert(x.clone(), v);
        }
    }
}

/// Transfers one out-edge: applies the branch assumption, then the
/// φ-copies. Returns `None` when the edge is infeasible.
fn transfer_edge(env: &AbsEnv, edge: &Edge<'_>, defs: &mut HashMap<Sym, AbsVal>) -> Option<AbsEnv> {
    let mut out = env.clone();
    if let Some((cond, pol)) = edge.assume {
        assume(&mut out, cond, pol);
        if out.unreachable {
            return None;
        }
    }
    // φ-copies read the *pre-copy* environment (parallel copies).
    let read = out.clone();
    for (dst, src) in &edge.copies {
        let v = read.get(src);
        record_def(defs, dst, v);
        out.set(dst.clone(), v);
    }
    Some(out)
}

/// Runs the dataflow to fixpoint over one body. Deterministic: the
/// worklist is ordered by reverse postorder, and all joins are
/// pointwise.
pub fn analyze_body(body: &Body) -> BodyFacts {
    let cfg = Cfg::build(body);
    let rpo = cfg.rpo();
    let mut order = vec![usize::MAX; cfg.blocks.len()];
    for (i, &b) in rpo.iter().enumerate() {
        order[b] = i;
    }

    let mut entries: Vec<Option<AbsEnv>> = vec![None; cfg.blocks.len()];
    entries[0] = Some(AbsEnv::default());
    let mut defs: HashMap<Sym, AbsVal> = HashMap::new();

    // Ascending phase with widening at loop heads.
    let mut work: BTreeSet<usize> = rpo.iter().map(|&b| order[b]).collect();
    let mut iter_guard = 0usize;
    let max_iters = 64 * cfg.blocks.len().max(1);
    while let Some(&i) = work.iter().next() {
        work.remove(&i);
        iter_guard += 1;
        if iter_guard > max_iters {
            break; // belt-and-braces; widening guarantees termination
        }
        let b = rpo[i];
        let Some(env) = entries[b].clone() else {
            continue;
        };
        let mut out = env;
        transfer_block(&cfg.blocks[b].stmts, &mut out, &mut defs);
        for e in &cfg.blocks[b].succs {
            let Some(next) = transfer_edge(&out, e, &mut defs) else {
                continue;
            };
            let merged = match &entries[e.to] {
                None => next,
                Some(old) => {
                    let joined = old.join(&next);
                    if cfg.blocks[e.to].loop_head {
                        old.widen(&joined)
                    } else {
                        joined
                    }
                }
            };
            let changed = match &entries[e.to] {
                None => true,
                Some(old) => !old.same_as(&merged),
            };
            if changed {
                entries[e.to] = Some(merged);
                if order[e.to] != usize::MAX {
                    work.insert(order[e.to]);
                }
            }
        }
    }

    // Descending phase: recompute entries without widening, narrowing
    // the stored values. Bounded passes keep termination trivial.
    for _ in 0..NARROWING_PASSES {
        let mut changed = false;
        for &b in &rpo {
            if b == 0 {
                continue;
            }
            let mut incoming: Option<AbsEnv> = None;
            for &p in &cfg.blocks[b].preds {
                let Some(penv) = entries[p].clone() else {
                    continue;
                };
                let mut out = penv;
                transfer_block(&cfg.blocks[p].stmts, &mut out, &mut defs);
                for e in &cfg.blocks[p].succs {
                    if e.to != b {
                        continue;
                    }
                    if let Some(next) = transfer_edge(&out, e, &mut defs) {
                        incoming = Some(match incoming {
                            None => next,
                            Some(acc) => acc.join(&next),
                        });
                    }
                }
            }
            if let (Some(old), Some(inc)) = (&entries[b], incoming) {
                let narrowed = old.narrow(&inc);
                if !narrowed.same_as(old) {
                    entries[b] = Some(narrowed);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Rebuild the per-definition summary from the final environments
    // (the ascending-phase records may be stale after narrowing).
    defs.clear();
    for &b in &rpo {
        let Some(env) = entries[b].clone() else {
            continue;
        };
        let mut out = env;
        transfer_block(&cfg.blocks[b].stmts, &mut out, &mut defs);
        for e in &cfg.blocks[b].succs {
            let _ = transfer_edge(&out, e, &mut defs);
        }
    }

    BodyFacts { entries, defs }
}

/// Collects every function unit of a program: top-level functions
/// (recursively including nested ones), class constructors and methods,
/// and the synthetic top-level body.
fn for_each_unit<'a>(ir: &'a IrProgram, f: &mut impl FnMut(&'a Body)) {
    fn visit_fun<'a>(fun: &'a IrFun, f: &mut impl FnMut(&'a Body)) {
        f(&fun.body);
        visit_nested(&fun.body, f);
    }
    fn visit_nested<'a>(body: &'a Body, f: &mut impl FnMut(&'a Body)) {
        match body {
            Body::Let { rest, .. } | Body::Effect { rest, .. } => visit_nested(rest, f),
            Body::LetFun { fun, rest, .. } => {
                visit_fun(fun, f);
                visit_nested(rest, f);
            }
            Body::If {
                then_br,
                else_br,
                rest,
                ..
            } => {
                visit_nested(then_br, f);
                visit_nested(else_br, f);
                visit_nested(rest, f);
            }
            Body::Loop { body, rest, .. } => {
                visit_nested(body, f);
                visit_nested(rest, f);
            }
            Body::Ret(..) | Body::EndBranch(_) => {}
        }
    }
    for fun in &ir.funs {
        visit_fun(fun, f);
    }
    for class in &ir.classes {
        if let Some(ctor) = &class.ctor {
            f(&ctor.body);
            visit_nested(&ctor.body, f);
        }
        for m in &class.methods {
            if let Some(body) = &m.body {
                f(body);
                visit_nested(body, f);
            }
        }
    }
    f(&ir.top);
    visit_nested(&ir.top, f);
}

/// Analyzes every function unit of a program and merges the per-value
/// summaries (joining on name collisions, which only parameters and
/// user-named locals can produce).
pub fn analyze_program(ir: &IrProgram) -> ProgramFacts {
    let mut out = ProgramFacts::default();
    for_each_unit(ir, &mut |body| {
        let facts = analyze_body(body);
        out.units += 1;
        for (x, v) in facts.defs {
            match out.values.get_mut(&x) {
                Some(old) => *old = old.join(&v),
                None => {
                    out.values.insert(x, v);
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> ProgramFacts {
        let prog = rsc_syntax::parse_program(src).unwrap();
        let ir = rsc_ssa::transform_program(&prog).unwrap();
        analyze_program(&ir)
    }

    fn body_facts(src: &str) -> (rsc_ssa::IrProgram, ()) {
        let prog = rsc_syntax::parse_program(src).unwrap();
        (rsc_ssa::transform_program(&prog).unwrap(), ())
    }

    #[test]
    fn constants_propagate_through_arithmetic() {
        let facts = analyze("function f(): number { var x = 2; var y = x * 3 + 1; return y; }");
        let y = facts
            .values
            .iter()
            .find(|(k, _)| k.as_str().starts_with("y"))
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(y.itv.as_const(), Some(7));
        assert!(y.cong.admits(7) && !y.cong.admits(8));
    }

    #[test]
    fn branch_assumptions_refine_and_join() {
        let facts = analyze(
            "function f(c: boolean): number {
                 var x = 0;
                 if (c) { x = 1; } else { x = 2; }
                 return x;
             }",
        );
        // The φ join of 1 and 2 is [1,2].
        let phi = facts
            .values
            .values()
            .filter_map(|v| {
                (v.itv
                    == Interval {
                        lo: Some(1),
                        hi: Some(2),
                    })
                .then_some(*v)
            })
            .next();
        assert!(phi.is_some(), "join of branch constants should be [1,2]");
    }

    #[test]
    fn loop_widening_terminates_and_keeps_lower_bound() {
        let facts = analyze(
            "function f(): number {
                 var i = 0;
                 while (i < 10) { i = i + 1; }
                 return i;
             }",
        );
        // The loop φ for i keeps 0 as a lower bound after widening.
        let widened = facts
            .values
            .iter()
            .filter(|(k, _)| k.as_str().starts_with("i"))
            .any(|(_, v)| v.itv.lo == Some(0));
        assert!(widened, "widening must preserve the stable lower bound");
    }

    #[test]
    fn guard_refinement_reaches_array_index() {
        let (ir, _) = body_facts(
            "function f(a: number[], i: number): number {
                 if (0 <= i) { if (i < 10) { return i; } }
                 return 0;
             }",
        );
        let facts = analyze_body(&ir.funs[0].body);
        // Inside both guards, some block sees i ∈ [0, 9].
        let refined = facts.entries.iter().flatten().any(|env| {
            ir.funs[0].params.iter().any(|p| {
                let v = env.get(p);
                v.itv.lo == Some(0) && v.itv.hi == Some(9)
            })
        });
        assert!(refined, "nested guards should refine i to [0,9]");
    }

    #[test]
    fn infeasible_branch_yields_unreachable_entry() {
        let (ir, _) = body_facts(
            "function f(): number {
                 var x = 1;
                 if (x < 1) { return 99; }
                 return x;
             }",
        );
        let facts = analyze_body(&ir.funs[0].body);
        // The then-arm of the impossible guard has no entry environment.
        assert!(
            facts.entries.iter().any(|e| e.is_none()),
            "the provably-false arm must be unreachable"
        );
    }
}
