//! The dataflow lint pass: warnings derived from the abstract
//! interpretation, with stable codes.
//!
//! | code  | meaning                                                    |
//! |-------|------------------------------------------------------------|
//! | L0001 | a guard is provably false — its branch is unreachable      |
//! | L0002 | a guard is provably true (tautological)                    |
//! | L0003 | a refinement annotation is already implied by the value    |
//! | L0004 | an array index is always out of bounds                     |
//!
//! Lints are *advisory*: unlike obligation discharge they may use the
//! full reduced product, including the congruence domain the SMT layer
//! cannot replay. They never suppress or add type errors.
//!
//! Literal `true`/`false` guards are exempt from L0001/L0002 —
//! `while (true)` and `if (false)` are deliberate idioms, not mistakes.

use rsc_logic::{CmpOp, Pred, Sym, Term};
use rsc_ssa::{Body, Cfg, IrExpr, IrProgram, Stmt, Terminator};
use rsc_syntax::types::AnnTy;
use rsc_syntax::Span;

use crate::domain::{AbsVal, Interval, Truth};
use crate::engine::{analyze_body, assume, eval, AbsEnv};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// The stable lint code (`L0001`–`L0004`).
    pub code: &'static str,
    /// Source location.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// Runs the lint pass over every function unit of a program. The result
/// is sorted by source position, then code, and is deterministic.
pub fn lint_program(ir: &IrProgram) -> Vec<Lint> {
    let mut lints = Vec::new();
    for_each_body(ir, &mut |body| lint_body(body, &mut lints));
    lints.sort_by_key(|l| (l.span.line, l.span.lo, l.code));
    lints.dedup();
    lints
}

fn for_each_body<'a>(ir: &'a IrProgram, f: &mut impl FnMut(&'a Body)) {
    fn nested<'a>(body: &'a Body, f: &mut impl FnMut(&'a Body)) {
        match body {
            Body::Let { rest, .. } | Body::Effect { rest, .. } => nested(rest, f),
            Body::LetFun { fun, rest, .. } => {
                f(&fun.body);
                nested(&fun.body, f);
                nested(rest, f);
            }
            Body::If {
                then_br,
                else_br,
                rest,
                ..
            } => {
                nested(then_br, f);
                nested(else_br, f);
                nested(rest, f);
            }
            Body::Loop { body, rest, .. } => {
                nested(body, f);
                nested(rest, f);
            }
            Body::Ret(..) | Body::EndBranch(_) => {}
        }
    }
    for fun in &ir.funs {
        f(&fun.body);
        nested(&fun.body, f);
    }
    for class in &ir.classes {
        if let Some(ctor) = &class.ctor {
            f(&ctor.body);
            nested(&ctor.body, f);
        }
        for m in &class.methods {
            if let Some(body) = &m.body {
                f(body);
                nested(body, f);
            }
        }
    }
    f(&ir.top);
    nested(&ir.top, f);
}

fn lint_body(body: &Body, lints: &mut Vec<Lint>) {
    let cfg = Cfg::build(body);
    let facts = analyze_body(body);
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(entry) = facts.entries.get(b).and_then(|e| e.clone()) else {
            continue; // unreachable: the guard that killed it is linted
        };
        let mut env = entry;
        for s in &block.stmts {
            match s {
                Stmt::Let { x, ann, rhs, .. } => {
                    scan_indices(rhs, &env, lints);
                    let v = eval(rhs, &env);
                    if let Some(AnnTy::Refined { vv, pred, .. }) = ann {
                        if !matches!(pred, Pred::True) && value_entails(&v, vv, pred) {
                            lints.push(Lint {
                                code: "L0003",
                                span: rhs.span(),
                                message: format!(
                                    "dead refinement: the value of `{}` already satisfies `{}`",
                                    source_name(x.as_str()),
                                    pred
                                ),
                            });
                        }
                    }
                    env.set((*x).clone(), v);
                }
                Stmt::Effect { e, .. } => scan_indices(e, &env, lints),
                Stmt::Fun { .. } => {} // analyzed as its own unit
            }
        }
        match &block.term {
            Terminator::Branch(cond, span) => {
                scan_indices(cond, &env, lints);
                if matches!(cond, IrExpr::Bool(..)) {
                    continue; // `while (true)` / `if (false)` idioms
                }
                match eval(cond, &env).truth {
                    Truth::False => lints.push(Lint {
                        code: "L0001",
                        span: *span,
                        message:
                            "unreachable branch: this guard is always false, so its body never runs"
                                .to_string(),
                    }),
                    Truth::True if !block.loop_head => lints.push(Lint {
                        code: "L0002",
                        span: *span,
                        message: "tautological guard: this condition is always true".to_string(),
                    }),
                    _ => {
                        // A guard whose *assumption* is infeasible is
                        // also an unreachable branch (e.g. `x < 1` with
                        // x pinned to 1 via a meet the truth evaluation
                        // alone cannot see).
                        let mut t_env = env.clone();
                        assume(&mut t_env, cond, true);
                        if t_env.is_unreachable() {
                            lints.push(Lint {
                                code: "L0001",
                                span: *span,
                                message: "unreachable branch: this guard is always false, so its body never runs"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
            Terminator::Ret(Some(e), _) => scan_indices(e, &env, lints),
            _ => {}
        }
    }
}

/// Strips the SSA version suffix (`x$2` → `x`) so lint messages show
/// source names. Compiler-introduced temporaries (names starting with
/// `$`) pass through unchanged.
fn source_name(ssa: &str) -> &str {
    match ssa.rsplit_once('$') {
        Some((base, ver))
            if !base.is_empty() && !ver.is_empty() && ver.bytes().all(|b| b.is_ascii_digit()) =>
        {
            base
        }
        _ => ssa,
    }
}

/// Finds `a[i]` reads that are provably out of bounds.
fn scan_indices(e: &IrExpr, env: &AbsEnv, lints: &mut Vec<Lint>) {
    match e {
        IrExpr::Index(a, i, span) => {
            scan_indices(a, env, lints);
            scan_indices(i, env, lints);
            let va = eval(a, env);
            let vi = eval(i, env);
            let negative = matches!(vi.itv.hi, Some(h) if h < 0);
            let past_end = matches!(
                (va.len.hi, vi.itv.lo),
                (Some(len_hi), Some(i_lo)) if i_lo >= len_hi
            );
            if negative || past_end {
                let detail = if negative {
                    "the index is always negative".to_string()
                } else {
                    format!(
                        "the index is at least {} but the array never has more than {} element(s)",
                        vi.itv.lo.unwrap_or(0),
                        va.len.hi.unwrap_or(0)
                    )
                };
                lints.push(Lint {
                    code: "L0004",
                    span: *span,
                    message: format!("index is always out of bounds: {detail}"),
                });
            }
        }
        IrExpr::Field(b, _, _) | IrExpr::Cast(_, b, _) | IrExpr::Unary(_, b, _) => {
            scan_indices(b, env, lints)
        }
        IrExpr::Binary(_, a, b, _) => {
            scan_indices(a, env, lints);
            scan_indices(b, env, lints);
        }
        IrExpr::Call(f, args, _) => {
            scan_indices(f, env, lints);
            args.iter().for_each(|a| scan_indices(a, env, lints));
        }
        IrExpr::New(_, _, args, _) | IrExpr::ArrayLit(args, _) => {
            args.iter().for_each(|a| scan_indices(a, env, lints));
        }
        IrExpr::FieldAssign(a, _, v, _) => {
            scan_indices(a, env, lints);
            scan_indices(v, env, lints);
        }
        IrExpr::IndexAssign(a, i, v, _) => {
            scan_indices(a, env, lints);
            scan_indices(i, env, lints);
            scan_indices(v, env, lints);
        }
        IrExpr::Var(..)
        | IrExpr::Num(..)
        | IrExpr::Bv(..)
        | IrExpr::Str(..)
        | IrExpr::Bool(..)
        | IrExpr::Null(_)
        | IrExpr::Undefined(_)
        | IrExpr::This(_) => {}
    }
}

/// Does the abstract value of the bound expression already entail the
/// annotation's refinement over its value variable? Lint-grade: the
/// congruence domain participates (this is never used for discharge).
fn value_entails(v: &AbsVal, vv: &Sym, pred: &Pred) -> bool {
    match pred {
        Pred::True => true,
        Pred::And(ps) => ps.iter().all(|p| value_entails(v, vv, p)),
        Pred::Or(ps) => ps.iter().any(|p| value_entails(v, vv, p)),
        Pred::Not(q) => match &**q {
            Pred::Cmp(op, a, b) => {
                value_entails(v, vv, &Pred::Cmp(op.negate(), a.clone(), b.clone()))
            }
            _ => false,
        },
        Pred::TermPred(Term::Var(x)) if x == vv => v.truth == Truth::True,
        Pred::Cmp(op, a, b) => {
            // Normalize so the value-variable side is on the left.
            let (op, lhs, rhs) = match (a, b) {
                (Term::Var(x), rhs) if x == vv => (*op, Itv::Val, term_itv(rhs)),
                (lhs, Term::Var(x)) if x == vv => (op.flip(), Itv::Val, term_itv(lhs)),
                (Term::App(f, args), rhs)
                    if f.as_str() == "len"
                        && matches!(args.as_slice(), [Term::Var(x)] if x == vv) =>
                {
                    (*op, Itv::Len, term_itv(rhs))
                }
                (lhs, Term::App(f, args))
                    if f.as_str() == "len"
                        && matches!(args.as_slice(), [Term::Var(x)] if x == vv) =>
                {
                    (op.flip(), Itv::Len, term_itv(lhs))
                }
                _ => return false,
            };
            let Some(rhs) = rhs else { return false };
            let lhs = match lhs {
                Itv::Val => v.itv,
                Itv::Len => v.len,
            };
            match op {
                CmpOp::Le => lhs.definitely_le(&rhs),
                CmpOp::Lt => lhs.definitely_lt(&rhs),
                CmpOp::Ge => rhs.definitely_le(&lhs),
                CmpOp::Gt => rhs.definitely_lt(&lhs),
                CmpOp::Eq => {
                    matches!((lhs.as_const(), rhs.as_const()), (Some(x), Some(y)) if x == y)
                }
                CmpOp::Ne => {
                    lhs.definitely_ne(&rhs)
                        || matches!(rhs.as_const(), Some(k) if !v.cong.admits(k))
                }
            }
        }
        _ => false,
    }
}

enum Itv {
    Val,
    Len,
}

fn term_itv(t: &Term) -> Option<Interval> {
    match t {
        Term::IntLit(n) => Some(Interval::exact(*n)),
        Term::Neg(a) => term_itv(a).map(|i| i.neg()),
        Term::Bin(op, a, b) => {
            let ia = term_itv(a)?;
            let ib = term_itv(b)?;
            match op {
                rsc_logic::BinOp::Add => Some(ia.add(&ib)),
                rsc_logic::BinOp::Sub => Some(ia.sub(&ib)),
                rsc_logic::BinOp::Mul => ia
                    .as_const()
                    .map(|k| ib.mul_const(k))
                    .or_else(|| ib.as_const().map(|k| ia.mul_const(k))),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<Lint> {
        let prog = rsc_syntax::parse_program(src).unwrap();
        let ir = rsc_ssa::transform_program(&prog).unwrap();
        lint_program(&ir)
    }

    #[test]
    fn l0001_unreachable_branch() {
        let l = lints_of(
            "function f(): number {
                 var x = 1;
                 if (x < 1) { return 99; }
                 return x;
             }",
        );
        assert!(l.iter().any(|l| l.code == "L0001"), "got: {l:?}");
    }

    #[test]
    fn l0002_tautological_guard() {
        let l = lints_of(
            "function f(): number {
                 var x = 1;
                 if (x > 0) { return 1; }
                 return 0;
             }",
        );
        assert!(l.iter().any(|l| l.code == "L0002"), "got: {l:?}");
    }

    #[test]
    fn literal_guards_are_exempt() {
        let l = lints_of(
            "function f(): number {
                 while (true) { return 1; }
                 return 0;
             }",
        );
        assert!(
            !l.iter().any(|l| l.code == "L0001" || l.code == "L0002"),
            "got: {l:?}"
        );
    }

    #[test]
    fn l0004_constant_index_out_of_bounds() {
        let l = lints_of(
            "function f(): number {
                 var a = [1, 2, 3];
                 return a[5];
             }",
        );
        assert!(l.iter().any(|l| l.code == "L0004"), "got: {l:?}");
    }

    #[test]
    fn in_bounds_index_is_clean() {
        let l = lints_of(
            "function f(): number {
                 var a = [1, 2, 3];
                 return a[2];
             }",
        );
        assert!(!l.iter().any(|l| l.code == "L0004"), "got: {l:?}");
    }
}
