//! The abstract domains: intervals over `i64` with ±∞, congruences
//! `v ≡ r (mod m)`, boolean truthiness and reference nullness — combined
//! as a reduced product in [`AbsVal`].
//!
//! Every operation errs toward ⊤ (no information); the only way an
//! analysis result can be wrong is a transfer function claiming more
//! than the concrete semantics guarantees, so each transfer here models
//! the *solver-visible* semantics: operations the SMT layer leaves
//! uninterpreted (nonlinear multiplication, division and modulus by
//! non-constants) map to ⊤ in the interval component, and only the
//! congruence component — which is never used to justify a discharge,
//! only lints — reasons about `%`.

/// An interval `[lo, hi]` over `i64` with `None` as ±∞.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The full interval (⊤).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The singleton `[n, n]`.
    pub fn exact(n: i64) -> Interval {
        Interval {
            lo: Some(n),
            hi: Some(n),
        }
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: None,
        }
    }

    /// `(-∞, hi]`.
    pub fn at_most(hi: i64) -> Interval {
        Interval {
            lo: None,
            hi: Some(hi),
        }
    }

    /// True when the interval contains no integer (the meet produced ⊥).
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// True when the interval is a single known constant.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Greatest lower bound (may be empty).
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Standard widening: bounds that grew since `self` jump to ∞.
    pub fn widen(&self, next: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b < a => None,
                (Some(a), Some(_)) => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b > a => None,
                (Some(a), Some(_)) => Some(a),
                _ => None,
            },
        }
    }

    /// Narrowing: an ∞ bound may be refined back to `next`'s finite
    /// bound; finite bounds keep their widened value.
    pub fn narrow(&self, next: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, next.lo) {
                (None, b) => b,
                (a, _) => a,
            },
            hi: match (self.hi, next.hi) {
                (None, b) => b,
                (a, _) => a,
            },
        }
    }

    /// Abstract addition (saturating to ∞ on overflow).
    pub fn add(&self, other: &Interval) -> Interval {
        let lift = |a: Option<i64>, b: Option<i64>| match (a, b) {
            (Some(x), Some(y)) => x.checked_add(y),
            _ => None,
        };
        Interval {
            lo: lift(self.lo, other.lo),
            hi: lift(self.hi, other.hi),
        }
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.and_then(|h| h.checked_neg()),
            hi: self.lo.and_then(|l| l.checked_neg()),
        }
    }

    /// Abstract multiplication by a constant.
    pub fn mul_const(&self, k: i64) -> Interval {
        if k == 0 {
            return Interval::exact(0);
        }
        let scaled = Interval {
            lo: self.lo.and_then(|l| l.checked_mul(k)),
            hi: self.hi.and_then(|h| h.checked_mul(k)),
        };
        if k > 0 {
            scaled
        } else {
            Interval {
                lo: scaled.hi,
                hi: scaled.lo,
            }
        }
    }

    /// True when every value of `self` is ≤ every value of `other`.
    pub fn definitely_le(&self, other: &Interval) -> bool {
        matches!((self.hi, other.lo), (Some(a), Some(b)) if a <= b)
    }

    /// True when every value of `self` is < every value of `other`.
    pub fn definitely_lt(&self, other: &Interval) -> bool {
        matches!((self.hi, other.lo), (Some(a), Some(b)) if a < b)
    }

    /// True when the two intervals cannot share a value.
    pub fn definitely_ne(&self, other: &Interval) -> bool {
        self.definitely_lt(other) || other.definitely_lt(self)
    }
}

/// A congruence `v ≡ rem (mod modulus)`. `modulus == 1` is ⊤;
/// `modulus == 0` means `v` is exactly the constant `rem`.
///
/// Used by the lint pass only — the SMT layer treats `%` as
/// uninterpreted, so a congruence fact is *not* in general re-derivable
/// by the solver and must never justify an obligation discharge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Congruence {
    /// The modulus (0 = exact constant, 1 = ⊤).
    pub modulus: u64,
    /// The residue, normalized into `[0, modulus)` when `modulus > 1`.
    pub rem: i64,
}

impl Congruence {
    /// ⊤ (no congruence information).
    pub const TOP: Congruence = Congruence { modulus: 1, rem: 0 };

    /// The exact constant `n`.
    pub fn exact(n: i64) -> Congruence {
        Congruence { modulus: 0, rem: n }
    }

    /// `v ≡ r (mod m)` for `m > 1`.
    pub fn modular(m: u64, r: i64) -> Congruence {
        if m <= 1 {
            return Congruence::TOP;
        }
        Congruence {
            modulus: m,
            rem: r.rem_euclid(m as i64),
        }
    }

    fn gcd(a: u64, b: u64) -> u64 {
        let (mut a, mut b) = (a, b);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    /// Least upper bound: the coarsest congruence implied by both.
    pub fn join(&self, other: &Congruence) -> Congruence {
        match (self.modulus, other.modulus) {
            (0, 0) => {
                if self.rem == other.rem {
                    *self
                } else {
                    let d = self.rem.abs_diff(other.rem);
                    Congruence::modular(d, self.rem)
                }
            }
            (0, m) | (m, 0) => {
                let (c, modular) = if self.modulus == 0 {
                    (self.rem, other)
                } else {
                    (other.rem, self)
                };
                if m <= 1 {
                    return Congruence::TOP;
                }
                let m2 = Self::gcd(m, c.abs_diff(modular.rem));
                Congruence::modular(m2, modular.rem)
            }
            (a, b) => {
                let g = Self::gcd(Self::gcd(a, b), self.rem.abs_diff(other.rem));
                Congruence::modular(g, self.rem)
            }
        }
    }

    /// True when `n` satisfies the congruence.
    pub fn admits(&self, n: i64) -> bool {
        match self.modulus {
            0 => n == self.rem,
            1 => true,
            m => n.rem_euclid(m as i64) == self.rem,
        }
    }

    /// Abstract addition.
    pub fn add(&self, other: &Congruence) -> Congruence {
        match (self.modulus, other.modulus) {
            (0, 0) => match self.rem.checked_add(other.rem) {
                Some(s) => Congruence::exact(s),
                None => Congruence::TOP,
            },
            (0, m) | (m, 0) if m > 1 => {
                let c = if self.modulus == 0 {
                    self.rem
                } else {
                    other.rem
                };
                let r = if self.modulus == 0 {
                    other.rem
                } else {
                    self.rem
                };
                Congruence::modular(m, r.wrapping_add(c))
            }
            (a, b) if a > 1 && b > 1 => {
                Congruence::modular(Self::gcd(a, b), self.rem.wrapping_add(other.rem))
            }
            _ => Congruence::TOP,
        }
    }

    /// Abstract multiplication by a constant.
    pub fn mul_const(&self, k: i64) -> Congruence {
        match self.modulus {
            0 => match self.rem.checked_mul(k) {
                Some(p) => Congruence::exact(p),
                None => Congruence::TOP,
            },
            1 => {
                // ⊤ · k is still a multiple of k.
                Congruence::modular(k.unsigned_abs(), 0)
            }
            m => match (m as i64).checked_mul(k.abs()) {
                Some(m2) => Congruence::modular(m2 as u64, self.rem.wrapping_mul(k)),
                None => Congruence::TOP,
            },
        }
    }
}

/// Three-valued boolean truthiness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truth {
    /// Definitely `true`.
    True,
    /// Definitely `false`.
    False,
    /// Unknown.
    Top,
}

impl Truth {
    /// Least upper bound.
    pub fn join(&self, other: &Truth) -> Truth {
        if self == other {
            *self
        } else {
            Truth::Top
        }
    }

    /// Logical negation.
    pub fn not(&self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Top => Truth::Top,
        }
    }
}

/// Definite nullness of a reference value (`null`/`undefined` count as
/// null).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Nullness {
    /// Definitely not null/undefined.
    NonNull,
    /// Definitely null or undefined.
    Null,
    /// Unknown.
    Top,
}

impl Nullness {
    /// Least upper bound.
    pub fn join(&self, other: &Nullness) -> Nullness {
        if self == other {
            *self
        } else {
            Nullness::Top
        }
    }
}

/// The reduced product of every domain, one record per abstract value.
/// Components irrelevant to a value's actual type simply stay ⊤; the
/// `reduce` step propagates information between components (an empty
/// interval or an interval/congruence contradiction collapses to ⊥).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsVal {
    /// Numeric range.
    pub itv: Interval,
    /// Numeric congruence.
    pub cong: Congruence,
    /// Boolean truthiness.
    pub truth: Truth,
    /// Reference nullness.
    pub null: Nullness,
    /// Range of `len(v)` for array references.
    pub len: Interval,
    /// ⊥: the program point binding this value is unreachable.
    pub bottom: bool,
}

impl AbsVal {
    /// ⊤ in every component.
    pub const TOP: AbsVal = AbsVal {
        itv: Interval::TOP,
        cong: Congruence::TOP,
        truth: Truth::Top,
        null: Nullness::Top,
        len: Interval::TOP,
        bottom: false,
    };

    /// ⊥.
    pub fn bottom() -> AbsVal {
        AbsVal {
            bottom: true,
            ..AbsVal::TOP
        }
    }

    /// The abstract integer `n`.
    pub fn int(n: i64) -> AbsVal {
        AbsVal {
            itv: Interval::exact(n),
            cong: Congruence::exact(n),
            ..AbsVal::TOP
        }
    }

    /// The abstract boolean `b`.
    pub fn bool(b: bool) -> AbsVal {
        AbsVal {
            truth: if b { Truth::True } else { Truth::False },
            ..AbsVal::TOP
        }
    }

    /// A known-null reference.
    pub fn null() -> AbsVal {
        AbsVal {
            null: Nullness::Null,
            ..AbsVal::TOP
        }
    }

    /// A known-non-null reference with the given length range.
    pub fn non_null(len: Interval) -> AbsVal {
        AbsVal {
            null: Nullness::NonNull,
            len,
            ..AbsVal::TOP
        }
    }

    /// The reduction step of the product: cross-propagates between
    /// components and collapses contradictions to ⊥.
    pub fn reduce(mut self) -> AbsVal {
        if self.bottom {
            return AbsVal::bottom();
        }
        // Interval/congruence reduction: tighten bounds to the nearest
        // admitted residue; an exact congruence is an exact interval.
        if self.cong.modulus == 0 {
            self.itv = self.itv.meet(&Interval::exact(self.cong.rem));
        } else if self.cong.modulus > 1 {
            let m = self.cong.modulus as i64;
            if let Some(lo) = self.itv.lo {
                let shift = (self.cong.rem - lo).rem_euclid(m);
                self.itv.lo = lo.checked_add(shift).or(self.itv.lo);
            }
            if let Some(hi) = self.itv.hi {
                let shift = (hi - self.cong.rem).rem_euclid(m);
                self.itv.hi = hi.checked_sub(shift).or(self.itv.hi);
            }
        }
        if let Some(c) = self.itv.as_const() {
            if !self.cong.admits(c) {
                return AbsVal::bottom();
            }
            self.cong = Congruence::exact(c);
        }
        if self.itv.is_empty() || self.len.is_empty() {
            return AbsVal::bottom();
        }
        self
    }

    /// Least upper bound (componentwise; ⊥ is the unit).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self.bottom {
            return *other;
        }
        if other.bottom {
            return *self;
        }
        AbsVal {
            itv: self.itv.join(&other.itv),
            cong: self.cong.join(&other.cong),
            truth: self.truth.join(&other.truth),
            null: self.null.join(&other.null),
            len: self.len.join(&other.len),
            bottom: false,
        }
    }

    /// Greatest lower bound, reduced.
    pub fn meet(&self, other: &AbsVal) -> AbsVal {
        if self.bottom || other.bottom {
            return AbsVal::bottom();
        }
        let met = AbsVal {
            itv: self.itv.meet(&other.itv),
            // Congruence meet is approximated by keeping the more precise
            // side (sound: the meet is below both).
            cong: if self.cong.modulus == 1 {
                other.cong
            } else {
                self.cong
            },
            truth: match (self.truth, other.truth) {
                (Truth::Top, t) | (t, Truth::Top) => t,
                (a, b) if a == b => a,
                _ => return AbsVal::bottom(),
            },
            null: match (self.null, other.null) {
                (Nullness::Top, n) | (n, Nullness::Top) => n,
                (a, b) if a == b => a,
                _ => return AbsVal::bottom(),
            },
            len: self.len.meet(&other.len),
            bottom: false,
        };
        met.reduce()
    }

    /// Widening: intervals widen, everything else joins.
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        if self.bottom {
            return *next;
        }
        if next.bottom {
            return *self;
        }
        AbsVal {
            itv: self.itv.widen(&next.itv),
            cong: self.cong.join(&next.cong),
            truth: self.truth.join(&next.truth),
            null: self.null.join(&next.null),
            len: self.len.widen(&next.len),
            bottom: false,
        }
    }

    /// Narrowing against a recomputed (descending) value.
    pub fn narrow(&self, next: &AbsVal) -> AbsVal {
        if self.bottom || next.bottom {
            return AbsVal::bottom();
        }
        AbsVal {
            itv: self.itv.narrow(&next.itv),
            len: self.len.narrow(&next.len),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_lattice_basics() {
        let a = Interval::exact(3);
        let b = Interval::exact(7);
        assert_eq!(
            a.join(&b),
            Interval {
                lo: Some(3),
                hi: Some(7)
            }
        );
        assert!(a.meet(&b).is_empty());
        assert_eq!(a.add(&b), Interval::exact(10));
        assert_eq!(a.sub(&b), Interval::exact(-4));
        assert_eq!(b.mul_const(-2), Interval::exact(-14));
        assert!(a.definitely_lt(&b));
        assert!(a.definitely_ne(&b));
    }

    #[test]
    fn widening_jumps_to_infinity_and_narrowing_recovers() {
        let a = Interval {
            lo: Some(0),
            hi: Some(1),
        };
        let b = Interval {
            lo: Some(0),
            hi: Some(2),
        };
        let w = a.widen(&b);
        assert_eq!(
            w,
            Interval {
                lo: Some(0),
                hi: None
            }
        );
        // A later descending pass recovers the loop-exit bound.
        let n = w.narrow(&Interval {
            lo: Some(0),
            hi: Some(10),
        });
        assert_eq!(
            n,
            Interval {
                lo: Some(0),
                hi: Some(10)
            }
        );
    }

    #[test]
    fn congruence_join_and_transfer() {
        let a = Congruence::exact(4);
        let b = Congruence::exact(10);
        let j = a.join(&b); // both ≡ 4 (mod 6) — gcd of difference
        assert_eq!(j.modulus, 6);
        assert!(j.admits(4) && j.admits(10) && j.admits(16));
        assert!(!j.admits(5));
        let even = Congruence::modular(2, 0);
        assert!(even.add(&Congruence::exact(1)).admits(3));
        assert_eq!(Congruence::TOP.mul_const(4).modulus, 4);
    }

    #[test]
    fn reduced_product_collapses_contradictions() {
        // v ∈ [3,3] but v ≡ 0 (mod 2): no integer satisfies both.
        let v = AbsVal {
            itv: Interval::exact(3),
            cong: Congruence::modular(2, 0),
            ..AbsVal::TOP
        };
        assert!(v.reduce().bottom);
        // v ∈ [1,6] ∧ v ≡ 0 (mod 3) tightens to [3,6].
        let v = AbsVal {
            itv: Interval {
                lo: Some(1),
                hi: Some(6),
            },
            cong: Congruence::modular(3, 0),
            ..AbsVal::TOP
        };
        let r = v.reduce();
        assert_eq!(
            r.itv,
            Interval {
                lo: Some(3),
                hi: Some(6)
            }
        );
    }

    #[test]
    fn meet_of_contradictory_nullness_is_bottom() {
        let a = AbsVal::null();
        let b = AbsVal::non_null(Interval::TOP);
        assert!(a.meet(&b).bottom);
    }
}
