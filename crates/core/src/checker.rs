//! The RSC refinement checker: declarative typing of IRSC (Figure 5)
//! implemented as constraint generation over Liquid templates, plus the
//! TypeScript-scaling features of §4 — reflection tags, interface
//! hierarchies with bit-vector flags, IGJ mutability, two-phase checking
//! of overloads, and constructor cooking.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rsc_liquid::{
    bundle_fingerprint, global_fingerprint, partition, solve_with, Blame, CEnv, ConstraintBundle,
    ConstraintSet, LiquidResult, ObligationKind,
};
use rsc_logic::{CmpOp, Pred, Sort, SortScope, Subst, Sym, Term};
use rsc_smt::{CacheCounters, SolverStats, VcCache};
use rsc_ssa::{Body, IrClass, IrExpr, IrFun, IrProgram};
use rsc_syntax::ast::{BinOpE, UnOp};
use rsc_syntax::{Mutability, Span};

use crate::diag::Diagnostic;
use crate::rtype::{Base, Prim, RType};
use crate::table::ClassTable;

/// Checker options (used by the evaluation's ablation benchmarks).
#[derive(Clone, Copy, Debug)]
pub struct CheckerOptions {
    /// Add branch conditions to environments (§2.1.1 "path sensitivity").
    pub path_sensitivity: bool,
    /// Use the built-in qualifier prelude.
    pub prelude_qualifiers: bool,
    /// Mine additional qualifiers from the program's own annotations.
    pub mine_qualifiers: bool,
    /// Worker threads for the parallel solve step. `0` means auto: the
    /// `RSC_JOBS` environment variable if set, otherwise the machine's
    /// available parallelism (capped at 8). Diagnostics are byte-identical
    /// for every value — see `rsc_liquid::partition` and the VC cache.
    pub jobs: usize,
    /// Share a canonicalizing VC cache across narrowing checks and all
    /// bundle solvers (the `no_vc_cache` ablation turns this off).
    pub vc_cache: bool,
    /// Maximum canonical-VC entries retained by the cache. `0` means
    /// auto: the `RSC_CACHE_CAP` environment variable if set, otherwise
    /// unbounded. Bounding matters for long-lived sessions — see
    /// `rsc_smt::VcCache`'s generation-count LRU eviction.
    pub cache_capacity: usize,
    /// Keep one persistent SMT context per κ-headed constraint during
    /// the fixpoint (`rsc_smt::IncrContext`), so weakening iterations
    /// re-solve deltas under activation literals instead of re-encoding
    /// from scratch. Verdict- and diagnostic-preserving; off is the
    /// ablation/debug path (`--no-incremental-smt` / `RSC_INCR_SMT=0`).
    pub incremental_smt: bool,
    /// Run the abstract-interpretation pre-pass (`rsc_absint`) before
    /// each SMT validity query, statically discharging obligations whose
    /// goal is entailed by the interval/nullness facts. The pre-pass may
    /// only *discharge*, never report: every skipped query is re-derivable
    /// by the solver, so diagnostics are byte-identical with it off
    /// (`--no-absint` is the ablation path).
    pub absint: bool,
    /// Run the dataflow lint pass (`L0001`–`L0004`) and surface findings
    /// as warning diagnostics in [`CheckResult::lints`]. Lints never
    /// affect the error stream or the check verdict.
    pub lints: bool,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            path_sensitivity: true,
            prelude_qualifiers: true,
            mine_qualifiers: true,
            jobs: 0,
            vc_cache: true,
            cache_capacity: 0,
            incremental_smt: true,
            absint: true,
            lints: true,
        }
    }
}

impl CheckerOptions {
    /// Resolves `jobs` to a concrete worker count (`RSC_DEBUG` forces 1
    /// so the fixpoint trace stays readable).
    pub fn effective_jobs(&self) -> usize {
        if std::env::var("RSC_DEBUG").is_ok() {
            return 1;
        }
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Ok(v) = std::env::var("RSC_JOBS") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => eprintln!(
                    "rsc: ignoring invalid RSC_JOBS={v:?} (expected a positive \
                     integer); using auto worker count"
                ),
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }

    /// Resolves `incremental_smt` against the `RSC_INCR_SMT` environment
    /// variable (`0`/`off`/`false` disables, anything else enables; the
    /// option wins only when the variable is unset). Diagnostics are
    /// byte-identical either way — the override exists for A/B timing.
    pub fn effective_incremental(&self) -> bool {
        match std::env::var("RSC_INCR_SMT") {
            Ok(v) => !matches!(v.as_str(), "0" | "off" | "false"),
            Err(_) => self.incremental_smt,
        }
    }

    /// Resolves `cache_capacity` to a concrete entry cap (`0` =
    /// unbounded), honoring `RSC_CACHE_CAP` when the option is unset.
    pub fn effective_cache_capacity(&self) -> usize {
        if self.cache_capacity > 0 {
            return self.cache_capacity;
        }
        if let Ok(v) = std::env::var("RSC_CACHE_CAP") {
            match v.parse::<usize>() {
                Ok(n) => return n,
                Err(_) => eprintln!(
                    "rsc: ignoring invalid RSC_CACHE_CAP={v:?} (expected a non-negative \
                     integer); cache is unbounded"
                ),
            }
        }
        0
    }
}

/// Statistics from one checker run (reported by the benchmark harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// κ-variables allocated.
    pub kvars: usize,
    /// Subtyping constraints generated.
    pub constraints: usize,
    /// SMT validity queries issued by the fixpoint.
    pub smt_queries: u64,
    /// Independent constraint bundles solved (≥ 1 for non-empty programs).
    pub bundles: usize,
    /// VC-cache hits across the whole run (narrowing + all bundles).
    pub cache_hits: u64,
    /// VC-cache misses across the whole run.
    pub cache_misses: u64,
    /// Bundles whose verdicts were reused from a previous session run
    /// (always 0 for cold, non-session checks).
    pub bundles_reused: usize,
    /// VC-cache entries evicted during this run (non-zero only when a
    /// cache capacity is configured).
    pub cache_evictions: u64,
    /// Obligations discharged statically by the abstract-interpretation
    /// pre-pass instead of being sent to the SMT solver (always 0 when
    /// the pre-pass is disabled). `smt_queries` counts only the queries
    /// actually issued, so `smt_queries + obligations_discharged` is the
    /// pre-pass-off query count.
    pub obligations_discharged: u64,
}

impl CheckStats {
    /// VC-cache hit rate in `[0, 1]` (0 when the cache saw no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Per-bundle solver report (one entry per [`ConstraintBundle`], in
/// deterministic source order) — the per-unit artifact that incremental
/// check sessions retain between runs.
#[derive(Clone, Debug)]
pub struct BundleReport {
    /// Constraints in the bundle.
    pub constraints: usize,
    /// κ-variables owned by the bundle.
    pub kvars: usize,
    /// Solver counters for exactly this bundle (each bundle's solver
    /// stats are taken fresh, not accumulated across bundles). For a
    /// `cached` bundle these are the counters recorded when the bundle
    /// was last actually solved, so session totals stay meaningful.
    pub smt: SolverStats,
    /// The bundle's canonical cross-run identity
    /// ([`rsc_liquid::bundle_fingerprint`]).
    pub fingerprint: u128,
    /// True when the verdict was reused from a previous session run
    /// instead of re-solved.
    pub cached: bool,
    /// The bundle's failing constraints: local index (into the bundle's
    /// own constraint list) plus the structured blame. For a `cached`
    /// bundle the blame is re-attached from the *current* run's
    /// constraints, so spans stay fresh even when nothing re-solves.
    pub failures: Vec<(usize, Blame)>,
    /// Liquid-level validity queries the bundle's fixpoint issued when
    /// it was (last) solved — a pure function of the bundle's canonical
    /// problem, so it is also correct for `cached` bundles.
    pub smt_queries: u64,
    /// Obligations the abstract-interpretation pre-pass discharged
    /// without an SMT query when the bundle was (last) solved. Like
    /// `smt_queries`, a pure function of the canonical bundle problem
    /// (and the pre-pass setting), so it is retained for `cached`
    /// bundles.
    pub discharged: u64,
    /// Wall-clock nanoseconds spent solving this bundle when it was
    /// (last) actually solved (retained, like the counters, for `cached`
    /// bundles). Measurement only: timing never influences verdicts,
    /// and reports are merged by bundle index, never by completion time.
    pub solve_ns: u64,
}

impl BundleReport {
    /// The retained verdict a session stores for this bundle. Only the
    /// failing *indices* are retained, not their blame: provenance is
    /// excluded from bundle fingerprints, so a fingerprint-equal bundle
    /// in a later run may sit at different source positions — its blame
    /// must come from that run's constraints, never from retention.
    pub fn retained(&self) -> RetainedBundle {
        RetainedBundle {
            failures: self.failures.iter().map(|(i, _)| *i).collect(),
            smt: self.smt,
            smt_queries: self.smt_queries,
            discharged: self.discharged,
            solve_ns: self.solve_ns,
        }
    }
}

/// A previous run's verdict for a bundle, keyed by its fingerprint.
/// Because verdicts are pure functions of the canonical bundle problem
/// (see `rsc_liquid::fingerprint`), replaying a retained verdict for a
/// fingerprint-equal bundle is byte-identical to re-solving it.
#[derive(Clone, Debug)]
pub struct RetainedBundle {
    /// Failing constraints, as bundle-local indices. Blame is
    /// re-attached from the current run's constraints at merge time.
    pub failures: Vec<usize>,
    /// Solver counters from when the bundle was last solved.
    pub smt: SolverStats,
    /// Liquid-level validity queries from when it was last solved.
    pub smt_queries: u64,
    /// Pre-pass-discharged obligations from when it was last solved.
    pub discharged: u64,
    /// Wall-clock solve time from when it was last solved.
    pub solve_ns: u64,
}

/// The result of checking a program.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Verification errors (empty = the program is safe).
    pub diagnostics: Vec<Diagnostic>,
    /// Lint warnings from the dataflow lint pass (`L0001`–`L0004`),
    /// kept separate from `diagnostics` so the error stream — and with
    /// it every golden fixture and byte-identity invariant — is
    /// unaffected by whether linting is enabled. Warnings never make
    /// [`CheckResult::ok`] false.
    pub lints: Vec<Diagnostic>,
    /// Statistics.
    pub stats: CheckStats,
    /// Per-bundle solver statistics (empty when checking aborted before
    /// the solve step, e.g. on parse errors).
    pub bundle_reports: Vec<BundleReport>,
}

impl CheckResult {
    /// True if verification succeeded.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// A typing environment Γ: SSA bindings, guard predicates, rigid type
/// variables, the expected return type, and the cooking state.
#[derive(Clone, Debug)]
pub struct Env {
    pub(crate) binds: Vec<(Sym, RType)>,
    pub(crate) guards: Vec<Pred>,
    pub(crate) tparams: HashSet<Sym>,
    pub(crate) ret: RType,
    /// Where the expected return type was declared (the enclosing
    /// function's span), used as the secondary blame range on return
    /// obligations.
    pub(crate) ret_span: Span,
    /// `Some(C)` while checking the constructor of `C` (§4.4 internal
    /// initialization: field writes are deferred to `ctor_init` at exits).
    pub(crate) in_ctor_of: Option<Sym>,
}

impl Env {
    pub(crate) fn new() -> Env {
        Env {
            binds: Vec::new(),
            guards: Vec::new(),
            tparams: HashSet::new(),
            ret: RType::void(),
            ret_span: Span::dummy(),
            in_ctor_of: None,
        }
    }

    pub(crate) fn bind(&mut self, x: impl Into<Sym>, t: RType) {
        self.binds.push((x.into(), t));
    }

    pub(crate) fn lookup(&self, x: &Sym) -> Option<&RType> {
        self.binds
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
    }

    pub(crate) fn guard(&mut self, p: Pred) {
        if !matches!(p, Pred::True) {
            self.guards.push(p);
        }
    }
}

/// The checker.
pub struct Checker {
    pub(crate) ct: ClassTable,
    pub(crate) cs: ConstraintSet,
    pub(crate) opts: CheckerOptions,
    pub(crate) diags: Vec<Diagnostic>,
    /// Unannotated nested functions, checked against expected arrow types
    /// at their use sites (context-sensitive closure checking, §2.2.1).
    pub(crate) deferred: HashMap<Sym, (IrFun, Env)>,
    /// Top-level functions by name.
    pub(crate) funs: HashMap<Sym, IrFun>,
    /// Ambient `declare`d values.
    pub(crate) declares: HashMap<Sym, RType>,
    /// Constructor scans: class → (immutable field → ctor param index).
    pub(crate) ctor_param_fields: HashMap<Sym, Vec<(Sym, usize)>>,
    /// Inference placeholders (array element types).
    pub(crate) infer: HashMap<u32, RType>,
    pub(crate) next_infer: u32,
    pub(crate) next_tmp: u32,
    /// The generating unit (function / class member / top level) of each
    /// constraint, parallel to `cs.subs` — the partition key for the
    /// parallel solve step.
    pub(crate) units: Vec<usize>,
    pub(crate) current_unit: usize,
    pub(crate) next_unit: usize,
    /// The run-wide VC cache, shared by narrowing refutation checks and
    /// every bundle solver.
    pub(crate) vc_cache: Arc<VcCache>,
}

/// Checks a program from source, running the full pipeline:
/// parse → SSA → constraint generation → Liquid fixpoint → SMT.
pub fn check_program(src: &str, opts: CheckerOptions) -> CheckResult {
    let mut diags = Vec::new();
    let prog = match rsc_syntax::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            diags.push(Diagnostic::error(e.message, e.span));
            return CheckResult {
                diagnostics: diags,
                lints: Vec::new(),
                stats: CheckStats::default(),
                bundle_reports: Vec::new(),
            };
        }
    };
    let ir = match rsc_ssa::transform_program(&prog) {
        Ok(i) => i,
        Err(e) => {
            diags.push(Diagnostic::error(e.message, e.span));
            return CheckResult {
                diagnostics: diags,
                lints: Vec::new(),
                stats: CheckStats::default(),
                bundle_reports: Vec::new(),
            };
        }
    };
    check_ir(&ir, opts)
}

/// Checks an already-parsed program: SSA → constraint generation →
/// Liquid fixpoint → SMT. Byte-identical to [`check_program`] on the
/// source the AST was parsed from; the workspace layer uses it to check
/// merged programs whose items were α-renamed in memory (so no source
/// text for the qualified program exists).
pub fn check_program_ast(prog: &rsc_syntax::Program, opts: CheckerOptions) -> CheckResult {
    let ir = match rsc_ssa::transform_program(prog) {
        Ok(i) => i,
        Err(e) => {
            return CheckResult {
                diagnostics: vec![Diagnostic::error(e.message, e.span)],
                lints: Vec::new(),
                stats: CheckStats::default(),
                bundle_reports: Vec::new(),
            };
        }
    };
    check_ir(&ir, opts)
}

/// Checks an already-SSA-translated program.
pub fn check_ir(ir: &IrProgram, opts: CheckerOptions) -> CheckResult {
    let cache = VcCache::shared_with_capacity(opts.effective_cache_capacity());
    solve_artifacts(generate_artifacts(ir, opts, cache), &mut |_| None)
}

/// The generation half of the pipeline: class table, constraint
/// generation, and partitioning into per-function bundles — everything
/// up to (but not including) the solve step. Incremental check sessions
/// call this on every edit (generation is cheap and, with `cache`
/// persisting across runs, mostly VC-cache hits), then hand the
/// artifacts to [`solve_artifacts`] with a retention hook so only
/// changed bundles are re-solved.
pub fn generate_artifacts(
    ir: &IrProgram,
    opts: CheckerOptions,
    cache: Arc<VcCache>,
) -> CheckArtifacts {
    let cache_before = cache.counters();
    let mut diags = Vec::new();
    let ct = {
        let _sp = rsc_obs::span!("class-table");
        match ClassTable::build(&ir.aliases, &ir.enums, &ir.interfaces, &classes_of(ir)) {
            Ok(t) => t,
            Err(e) => {
                diags.push(Diagnostic::error(e.0, Span::dummy()));
                return CheckArtifacts::empty(diags, opts, cache, cache_before);
            }
        }
    };
    let mut cs = ConstraintSet::new();
    if !opts.prelude_qualifiers {
        Arc::make_mut(&mut cs.quals).clear();
    }
    ct.register_sorts(Arc::make_mut(&mut cs.sort_env));
    let checker = Checker {
        ct,
        cs,
        opts,
        diags,
        deferred: HashMap::new(),
        funs: HashMap::new(),
        declares: HashMap::new(),
        ctor_param_fields: HashMap::new(),
        infer: HashMap::new(),
        next_infer: 0,
        next_tmp: 0,
        units: Vec::new(),
        current_unit: 0,
        next_unit: 1,
        vc_cache: cache,
    };
    let mut art = checker.generate(ir, cache_before);
    if opts.lints {
        let _sp = rsc_obs::span!("absint");
        art.lints = rsc_absint::lint_program(ir)
            .into_iter()
            .map(|l| Diagnostic::warning(l.code, l.message, l.span))
            .collect();
    }
    art
}

/// The generation phase's output: partitioned bundles plus everything
/// the solve step needs to produce a [`CheckResult`]. See
/// [`generate_artifacts`] / [`solve_artifacts`].
pub struct CheckArtifacts {
    /// Per-function constraint bundles, in source order. Each
    /// constraint carries its own [`Blame`] (span, obligation kind,
    /// refinement renderings) — there is no side table of spans.
    pub bundles: Vec<ConstraintBundle>,
    /// Diagnostics produced during generation (parse-independent resolve
    /// errors etc.), merged ahead of solve failures.
    pub gen_diags: Vec<Diagnostic>,
    /// Lint warnings from the dataflow pass over the IR (empty when
    /// `opts.lints` is off). Computed during generation — lints depend
    /// only on the IR, never on solver verdicts — and passed through to
    /// [`CheckResult::lints`] untouched by the solve step.
    pub lints: Vec<Diagnostic>,
    /// κ-variables allocated across the whole set.
    pub kvars: usize,
    /// Constraints generated across the whole set.
    pub constraints: usize,
    /// Fingerprint of the run-global solve inputs
    /// ([`rsc_liquid::global_fingerprint`]).
    pub global_fp: u64,
    /// The VC cache used during generation, shared into the solve step
    /// (and, for sessions, across runs).
    pub vc_cache: Arc<VcCache>,
    /// Cache counters when this run started — [`CheckStats`] reports the
    /// delta, so a session-shared cache still yields per-run numbers.
    pub cache_before: CacheCounters,
    /// The options generation ran under.
    pub opts: CheckerOptions,
}

impl CheckArtifacts {
    fn empty(
        gen_diags: Vec<Diagnostic>,
        opts: CheckerOptions,
        vc_cache: Arc<VcCache>,
        cache_before: CacheCounters,
    ) -> CheckArtifacts {
        CheckArtifacts {
            bundles: Vec::new(),
            gen_diags,
            lints: Vec::new(),
            kvars: 0,
            constraints: 0,
            global_fp: 0,
            vc_cache,
            cache_before,
            opts,
        }
    }
}

/// The solve half of the pipeline: fingerprints every bundle, asks
/// `reuse` whether a previous run's verdict can stand in, solves the
/// rest on a scoped work-stealing pool, and merges verdicts into a
/// [`CheckResult`] in deterministic source order.
///
/// Passing `&mut |_| None` for `reuse` is a cold check — exactly the
/// behavior of [`check_ir`]. Incremental sessions pass a lookup into the
/// previous run's fingerprint-keyed [`RetainedBundle`]s; because every
/// verdict is a pure function of the canonical bundle problem (and, with
/// a cache attached, of canonical VC fingerprints), the merged output is
/// byte-identical to the cold check either way.
pub fn solve_artifacts(
    art: CheckArtifacts,
    reuse: &mut dyn FnMut(u128) -> Option<RetainedBundle>,
) -> CheckResult {
    let _sp_solve = rsc_obs::span!("solve");
    let CheckArtifacts {
        bundles,
        gen_diags: mut diags,
        lints,
        kvars: total_kvars,
        constraints: total_constraints,
        global_fp,
        vc_cache,
        cache_before,
        opts,
    } = art;

    let fingerprints: Vec<u128> = bundles
        .iter()
        .map(|b| bundle_fingerprint(b, global_fp))
        .collect();
    let retained: Vec<Option<RetainedBundle>> = fingerprints.iter().map(|fp| reuse(*fp)).collect();

    // Solve the non-retained bundles on the pool, one solver per bundle,
    // all sharing the run-wide VC cache. With a cache attached each
    // validity verdict is a pure function of the canonical VC, so
    // scheduling cannot change any answer and the merged output is
    // byte-identical for every worker count.
    let jobs = opts.effective_jobs();
    let cache = &vc_cache;
    let use_cache = opts.vc_cache;
    let solve_opts = rsc_liquid::SolveOptions {
        incremental: opts.effective_incremental(),
        absint: opts.absint,
    };
    let to_solve: Vec<usize> = (0..bundles.len())
        .filter(|i| retained[*i].is_none())
        .collect();
    // Each worker closure returns its *bundle index* alongside the
    // outcome, and placement below keys on that index — never on the
    // position a result came back in. The pool documents input-order
    // results, but per-bundle stats (and timings) must merge in
    // bundle-index order even if that contract ever changes, so the
    // ordering is structural here rather than inherited.
    type Outcome = (LiquidResult, SolverStats, u64);
    let outcomes: Vec<(usize, Outcome)> = threadpool::Pool::new(jobs).run(
        to_solve
            .iter()
            .map(|&i| {
                let b = &bundles[i];
                move || {
                    let _sp = rsc_obs::span!("solve-bundle", unit = i);
                    let started = std::time::Instant::now();
                    let mut smt = if use_cache {
                        rsc_smt::Solver::with_cache(Arc::clone(cache))
                    } else {
                        rsc_smt::Solver::new()
                    };
                    let result = solve_with(&b.cs, &mut smt, solve_opts);
                    let solve_ns = started.elapsed().as_nanos() as u64;
                    // Per-bundle counters: take (and thereby reset)
                    // rather than reading cumulative totals.
                    (i, (result, smt.stats.take(), solve_ns))
                }
            })
            .collect(),
    );
    let mut solved: Vec<Option<Outcome>> = bundles.iter().map(|_| None).collect();
    for (i, outcome) in outcomes {
        debug_assert!(solved[i].is_none(), "bundle {i} solved twice");
        solved[i] = Some(outcome);
    }

    // Merge deterministically: failures are reported in the source
    // order of their constraints, exactly as the sequential solver
    // did before partitioning.
    if std::env::var("RSC_DEBUG").is_ok() {
        for (b, outcome) in bundles.iter().zip(&solved) {
            if let Some((result, _, _)) = outcome {
                debug_dump(b, result);
            }
        }
    }
    let mut failures: Vec<(usize, Blame)> = Vec::new();
    let mut smt_queries = 0u64;
    let mut discharged = 0u64;
    let mut bundles_reused = 0usize;
    let mut bundle_reports = Vec::with_capacity(bundles.len());
    for (i, b) in bundles.iter().enumerate() {
        let report = match (&retained[i], &solved[i]) {
            (Some(r), _) => {
                bundles_reused += 1;
                // Provenance is excluded from fingerprints, so the
                // retained verdict only names failing *indices*; blame
                // (spans, renderings) is re-attached from this run's
                // constraints — that is what keeps line numbers fresh
                // across whitespace-only edits that re-solve nothing.
                let failures = r
                    .failures
                    .iter()
                    .filter_map(|&local| {
                        b.cs.subs
                            .get(local)
                            .map(|c| (local, c.blame_with_renderings()))
                    })
                    .collect();
                BundleReport {
                    constraints: b.cs.subs.len(),
                    kvars: b.cs.num_kvars(),
                    smt: r.smt,
                    fingerprint: fingerprints[i],
                    cached: true,
                    failures,
                    smt_queries: r.smt_queries,
                    discharged: r.discharged,
                    solve_ns: r.solve_ns,
                }
            }
            (None, Some((result, smt, solve_ns))) => BundleReport {
                constraints: b.cs.subs.len(),
                kvars: b.cs.num_kvars(),
                smt: *smt,
                fingerprint: fingerprints[i],
                cached: false,
                failures: result.failures.clone(),
                smt_queries: result.smt_queries,
                discharged: result.discharged,
                solve_ns: *solve_ns,
            },
            (None, None) => unreachable!("bundle neither retained nor solved"),
        };
        smt_queries += report.smt_queries;
        discharged += report.discharged;
        for (local, blame) in &report.failures {
            failures.push((b.members[*local], blame.clone()));
        }
        bundle_reports.push(report);
    }
    failures.sort_by_key(|f| f.0);
    for (_, blame) in failures {
        diags.push(Diagnostic::from_blame(&blame));
    }
    let counters = vc_cache.counters();
    let stats = CheckStats {
        kvars: total_kvars,
        constraints: total_constraints,
        smt_queries,
        bundles: bundles.len(),
        cache_hits: counters.hits - cache_before.hits,
        cache_misses: counters.misses - cache_before.misses,
        bundles_reused,
        cache_evictions: counters.evictions - cache_before.evictions,
        obligations_discharged: discharged,
    };
    CheckResult {
        diagnostics: diags,
        lints,
        stats,
        bundle_reports,
    }
}

/// `"detail"` → `"detail: "` (empty stays empty), for composing nested
/// blame detail text.
fn prefix(detail: &str) -> String {
    if detail.is_empty() {
        String::new()
    } else {
        format!("{detail}: ")
    }
}

fn classes_of(ir: &IrProgram) -> Vec<rsc_syntax::ast::ClassDecl> {
    ir.classes.iter().map(|c| c.decl.clone()).collect()
}

impl Checker {
    // ------------------------------------------------------------ driver ---

    fn generate(mut self, ir: &IrProgram, cache_before: CacheCounters) -> CheckArtifacts {
        let gen_span = rsc_obs::span!("constraint-gen");
        // Ambient declarations.
        for d in &ir.declares {
            match self.ct.resolve(&d.ty) {
                Ok(t) => {
                    self.declares.insert(d.name.clone(), t);
                }
                Err(e) => self.diags.push(Diagnostic::error(e.0, d.span)),
            }
        }
        // User qualifiers.
        for q in &ir.quals {
            self.add_user_qualifier(q);
        }
        // Top-level functions.
        for f in &ir.funs {
            self.funs.insert(f.name.clone(), f.clone());
        }
        // Constructor scans (which immutable fields get which ctor param).
        for c in &ir.classes {
            let map = scan_ctor_params(c);
            self.ctor_param_fields.insert(c.decl.name.clone(), map);
        }
        if self.opts.mine_qualifiers {
            self.mine_qualifiers(ir);
        }

        // Check everything. Unannotated top-level functions are deferred:
        // they are checked at the call sites that receive them — their
        // constraints land in the calling unit. Every annotated function,
        // class member, and the top level opens its own unit; the
        // partitioner below merges units that share a κ-variable.
        for f in &ir.funs {
            if f.sigs.is_empty() {
                self.deferred
                    .insert(f.name.clone(), (f.clone(), Env::new()));
            } else {
                self.begin_unit();
                self.check_fun(f, &Env::new());
            }
        }
        for c in &ir.classes {
            self.check_class(c);
        }
        self.begin_unit();
        let mut env = Env::new();
        env.ret = RType::trivial(Base::Union(vec![])); // top-level return: anything
        self.check_body(&ir.top, &mut env);

        drop(gen_span);

        // Partition: one closed constraint problem per function-level unit.
        let _sp = rsc_obs::span!("partition");
        let total_kvars = self.cs.num_kvars();
        let total_constraints = self.cs.subs.len();
        let units = std::mem::take(&mut self.units);
        let cs = std::mem::replace(&mut self.cs, ConstraintSet::new());
        let global_fp = global_fingerprint(&cs.quals, &cs.sort_env);
        let bundles = partition(cs, &units);

        CheckArtifacts {
            bundles,
            gen_diags: self.diags,
            lints: Vec::new(),
            kvars: total_kvars,
            constraints: total_constraints,
            global_fp,
            vc_cache: self.vc_cache,
            cache_before,
            opts: self.opts,
        }
    }

    /// Opens a fresh constraint-generation unit; constraints pushed until
    /// the next call are partitioned (and solved) together. The temporary
    /// counter restarts per unit (temps are named `$u<unit>t<n>`), so an
    /// edit that adds or removes temps in one function cannot shift the
    /// names — and hence the bundle fingerprints — of any other unit.
    pub(crate) fn begin_unit(&mut self) {
        self.current_unit = self.next_unit;
        self.next_unit += 1;
        self.next_tmp = 0;
    }

    fn add_user_qualifier(&mut self, q: &rsc_syntax::ast::QualifDecl) {
        let mut params = Vec::new();
        let mut vv_sort = Sort::Int;
        for (i, (x, t)) in q.params.iter().enumerate() {
            let sort = match t {
                rsc_syntax::AnnTy::Name(n, _) => match n.as_str() {
                    "number" => Sort::Int,
                    "boolean" => Sort::Bool,
                    "string" => Sort::Str,
                    "ref" => Sort::Ref,
                    n if self.ct.enums.contains_key(n) => Sort::Bv32,
                    _ => Sort::Ref,
                },
                _ => Sort::Ref,
            };
            if i == 0 {
                vv_sort = sort;
            } else {
                params.push((x.clone(), sort));
            }
        }
        // Rename the first parameter to v.
        let body = if let Some((x0, _)) = q.params.first() {
            Subst::one(x0.clone(), Term::vv()).apply_pred(&self.resolve_pred(&q.body))
        } else {
            self.resolve_pred(&q.body)
        };
        Arc::make_mut(&mut self.cs.quals).push(rsc_logic::Qualifier::new(
            q.name.to_string(),
            vv_sort,
            params,
            body,
        ));
    }

    /// Rewrites enum member references (`Flags.Object`) into bit-vector
    /// literals inside a predicate.
    pub(crate) fn resolve_pred(&self, p: &Pred) -> Pred {
        fn go_term(ct: &ClassTable, t: &Term) -> Term {
            match t {
                Term::Field(b, f) => {
                    if let Term::Var(e) = b.as_ref() {
                        if let Some(members) = ct.enums.get(e) {
                            if let Some(v) = members.get(f) {
                                return Term::bv(*v);
                            }
                        }
                    }
                    Term::field(go_term(ct, b), f.clone())
                }
                Term::App(f, args) => {
                    Term::app(f.clone(), args.iter().map(|a| go_term(ct, a)).collect())
                }
                Term::Bin(op, a, b) => Term::bin(*op, go_term(ct, a), go_term(ct, b)),
                Term::Neg(a) => Term::neg(go_term(ct, a)),
                other => other.clone(),
            }
        }
        fn go(ct: &ClassTable, p: &Pred) -> Pred {
            match p {
                Pred::And(ps) => Pred::and(ps.iter().map(|q| go(ct, q)).collect()),
                Pred::Or(ps) => Pred::or(ps.iter().map(|q| go(ct, q)).collect()),
                Pred::Not(q) => Pred::not(go(ct, q)),
                Pred::Imp(a, b) => Pred::imp(go(ct, a), go(ct, b)),
                Pred::Iff(a, b) => Pred::iff(go(ct, a), go(ct, b)),
                Pred::Cmp(op, a, b) => Pred::cmp(*op, go_term(ct, a), go_term(ct, b)),
                Pred::App(f, args) => {
                    Pred::App(f.clone(), args.iter().map(|a| go_term(ct, a)).collect())
                }
                Pred::TermPred(t) => Pred::TermPred(go_term(ct, t)),
                other => other.clone(),
            }
        }
        go(&self.ct, p)
    }

    /// Mines qualifiers from the atoms of resolved signature refinements.
    fn mine_qualifiers(&mut self, ir: &IrProgram) {
        let mut mined: Vec<rsc_logic::Qualifier> = Vec::new();
        let mut tys: Vec<(RType, Vec<(Sym, Sort)>)> = Vec::new();
        let harvest_fun = |ct: &ClassTable, ft: &rsc_syntax::FunTy, out: &mut Vec<_>| {
            let tp: HashSet<Sym> = ft.tparams.iter().cloned().collect();
            if let Ok(rf) = ct.resolve_funty(ft, &tp) {
                let mut scope: Vec<(Sym, Sort)> = vec![(Sym::from("this"), Sort::Ref)];
                for (x, t) in &rf.params {
                    scope.push((x.clone(), t.sort()));
                }
                for (_, t) in &rf.params {
                    out.push((t.clone(), scope.clone()));
                }
                out.push((rf.ret.clone(), scope));
            }
        };
        for f in &ir.funs {
            for sig in &f.sigs {
                harvest_fun(&self.ct, sig, &mut tys);
            }
        }
        for c in &ir.classes {
            for m in &c.decl.methods {
                harvest_fun(&self.ct, &m.sig, &mut tys);
            }
            for fd in &c.decl.fields {
                if let Ok(t) = self.ct.resolve(&fd.ty) {
                    tys.push((t, vec![(Sym::from("this"), Sort::Ref)]));
                }
            }
        }
        let mut seen: HashSet<String> = HashSet::new();
        for (t, scope) in tys {
            let pred = self.resolve_pred(&t.pred);
            for atom in pred.conjuncts() {
                if !atom.free_vars().contains("v") {
                    continue;
                }
                // Generalize free variables to wildcard parameters.
                let mut params: Vec<(Sym, Sort)> = Vec::new();
                let mut subst = Subst::new();
                let mut ok = true;
                for fv in atom.free_vars() {
                    if fv == "v" {
                        continue;
                    }
                    let sort = if fv == "this" {
                        Some(Sort::Ref)
                    } else {
                        scope.iter().find(|(x, _)| *x == fv).map(|(_, s)| *s)
                    };
                    match sort {
                        Some(s) => {
                            let p = Sym::from(format!("★{}", params.len()));
                            params.push((p.clone(), s));
                            subst.push(fv.clone(), Term::var(p));
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let body = subst.apply_pred(&atom);
                let key = format!("{}|{:?}", body, t.sort());
                if seen.insert(key) {
                    mined.push(rsc_logic::Qualifier::new(
                        format!("Mined{}", mined.len()),
                        t.sort(),
                        params,
                        body,
                    ));
                }
            }
        }
        mined.truncate(48);
        Arc::make_mut(&mut self.cs.quals).extend(mined);
    }

    // ------------------------------------------------------- environment ---

    pub(crate) fn fresh_tmp(&mut self) -> Sym {
        self.next_tmp += 1;
        Sym::from(format!("$u{}t{}", self.current_unit, self.next_tmp))
    }

    /// The implicit predicate carried by a type's structure: reflection
    /// tags (§4.2), interface-inclusion facts (§4.3), null/undefined
    /// identities — conjoined with the explicit refinement.
    pub(crate) fn embed_pred(&self, t: &RType) -> Pred {
        let tag = self.tag_pred(&t.base);
        Pred::and(vec![tag, t.pred.clone()])
    }

    pub(crate) fn tag_pred(&self, b: &Base) -> Pred {
        let tt = |s: &str| Pred::eq(Term::ttag_of(Term::vv()), Term::str(s));
        match b {
            Base::Prim(Prim::Num) => tt("number"),
            Base::Prim(Prim::Bool) => tt("boolean"),
            Base::Prim(Prim::Str) => tt("string"),
            Base::Prim(Prim::Void) => Pred::True,
            Base::Prim(Prim::Undef) => Pred::and(vec![
                tt("undefined"),
                Pred::eq(Term::vv(), Term::app("undefv", vec![])),
            ]),
            Base::Prim(Prim::Null) => Pred::eq(Term::vv(), Term::app("nullv", vec![])),
            Base::Bv(_) => Pred::True,
            Base::Arr(..) => tt("object"),
            Base::Obj(c, _, _) => Pred::and(vec![tt("object"), self.ct.inv_pred(c, &Term::vv())]),
            Base::Fun(_) => tt("function"),
            Base::TVar(_) | Base::Infer(_) => Pred::True,
            Base::Union(parts) => Pred::or(
                parts
                    .iter()
                    .map(|p| Pred::and(vec![self.tag_pred(&p.base), p.pred.clone()]))
                    .collect(),
            ),
        }
    }

    pub(crate) fn to_cenv(&self, env: &Env) -> CEnv {
        let mut c = CEnv::new();
        for (x, t) in &env.binds {
            c.bind(x.clone(), t.sort(), self.embed_pred(t));
        }
        for g in &env.guards {
            c.guard(g.clone());
        }
        c
    }

    // -------------------------------------------------------- constraints ---

    pub(crate) fn push_sub_pred(
        &mut self,
        env: &Env,
        lhs: Pred,
        rhs: Pred,
        vv_sort: Sort,
        blame: &Blame,
    ) {
        let cenv = self.to_cenv(env);
        let before = self.cs.subs.len();
        self.cs.push_sub(cenv, lhs, rhs, vv_sort, blame);
        for _ in before..self.cs.subs.len() {
            self.units.push(self.current_unit);
        }
    }

    /// Reports a base-type mismatch as a dead-code obligation: valid only
    /// if the environment is inconsistent — exactly the two-phase typing
    /// treatment of overload conjuncts (§2.1.2).
    pub(crate) fn base_error(&mut self, env: &Env, span: Span, msg: String) {
        let blame = Blame::new(ObligationKind::BaseType, msg, span);
        self.push_sub_pred(env, Pred::True, Pred::False, Sort::Int, &blame);
    }

    /// [`Checker::base_error`] under an inherited obligation kind: a
    /// structural mismatch discovered while discharging `blame` keeps
    /// that blame's kind/code (a bad call argument stays `R0001` even
    /// when it fails structurally) with the mismatch appended to the
    /// detail.
    pub(crate) fn base_error_blamed(&mut self, env: &Env, blame: &Blame, mismatch: String) {
        let mut blame = blame.clone();
        blame.detail = format!("{}{mismatch}", prefix(&blame.detail));
        self.push_sub_pred(env, Pred::True, Pred::False, Sort::Int, &blame);
    }

    /// Immediate (kvar-free, pessimistic) refutation check used for union
    /// narrowing decisions.
    pub(crate) fn refuted(&self, env: &Env, extra: &[Pred]) -> bool {
        let cenv = self.to_cenv(env);
        // Binder overlay over the shared sort environment — refutation
        // checks run once per union part per overload arm, so cloning
        // the environment here used to dominate the narrowing profile.
        let mut binders = cenv.scope();
        binders.push((Sym::from("v"), Sort::Ref));
        let sorts = SortScope::new(&*self.cs.sort_env, &binders);
        let mut hyps: Vec<Pred> = Vec::new();
        for h in cenv.embed() {
            hyps.extend(drop_kvars(h).conjuncts());
        }
        for e in extra {
            hyps.extend(drop_kvars(e.clone()).conjuncts());
        }
        hyps.retain(|p| sorts.check_pred(p).is_ok());
        let mut seeds: std::collections::BTreeSet<Sym> = std::collections::BTreeSet::new();
        seeds.insert(Sym::from("v"));
        for e in extra {
            seeds.extend(e.free_vars());
        }
        let hyps = rsc_liquid::filter_relevant(hyps, seeds);
        // Narrowing refutations run during (single-threaded) generation
        // but share the run-wide VC cache: overload arms and union parts
        // re-refute near-identical environments constantly.
        let mut smt = if self.opts.vc_cache {
            rsc_smt::Solver::with_cache(Arc::clone(&self.vc_cache))
        } else {
            rsc_smt::Solver::new()
        };
        smt.is_valid(&sorts, &hyps, &Pred::False)
    }

    // ----------------------------------------------------------- subtyping ---

    pub(crate) fn resolve_infer(&self, t: &RType) -> RType {
        if let Base::Infer(u) = t.base {
            if let Some(b) = self.infer.get(&u) {
                return b.clone().strengthen(t.pred.clone());
            }
        }
        t.clone()
    }

    /// `Γ ⊢ T1 ⊑ T2` — generates constraints; base mismatches become
    /// dead-code obligations. `blame` names the obligation being
    /// discharged (kind, detail, span) and is attached, with the
    /// refinement renderings of each split constraint, to everything
    /// pushed here.
    pub(crate) fn sub(&mut self, env: &Env, t1: &RType, t2: &RType, blame: &Blame) {
        let t1 = self.resolve_infer(t1);
        let t2 = self.resolve_infer(t2);
        // Inference placeholders: bind to the other side's structure.
        if let Base::Infer(u) = t2.base {
            self.infer.insert(u, RType::trivial(t1.base.clone()));
            return self.sub(env, &t1, &self.resolve_infer(&t2), blame);
        }
        if let Base::Infer(u) = t1.base {
            self.infer.insert(u, RType::trivial(t2.base.clone()));
            return self.sub(env, &self.resolve_infer(&t1), &t2, blame);
        }
        // Empty unions act as ⊥ on the left (error recovery) and ⊤ on the
        // right (e.g. the top-level "return anything" type).
        if matches!(&t1.base, Base::Union(ps) if ps.is_empty())
            || matches!(&t2.base, Base::Union(ps) if ps.is_empty())
        {
            return;
        }
        let vv_sort = t1.sort();
        let lhs_pred = self.embed_pred(&t1);
        let lhs = move || lhs_pred.clone();
        match (&t1.base, &t2.base) {
            (Base::Prim(p1), Base::Prim(p2)) if p1 == p2 => {
                let l = lhs();
                self.push_sub_pred(env, l, t2.pred.clone(), vv_sort, blame);
            }
            // Anything flows into void (statement position).
            (_, Base::Prim(Prim::Void)) => {}
            (Base::Bv(_), Base::Bv(_)) => {
                let l = lhs();
                self.push_sub_pred(env, l, t2.pred.clone(), Sort::Bv32, blame);
            }
            (Base::TVar(a), Base::TVar(b)) if a == b => {
                let l = lhs();
                self.push_sub_pred(env, l, t2.pred.clone(), vv_sort, blame);
            }
            (Base::Arr(e1, m1), Base::Arr(e2, m2)) => {
                if !m1.satisfies(*m2) {
                    return self.base_error_blamed(
                        env,
                        blame,
                        format!(
                            "array mutability {} does not satisfy {}",
                            m1.abbrev(),
                            m2.abbrev()
                        ),
                    );
                }
                let e1c = (**e1).clone();
                let e2c = (**e2).clone();
                self.sub(env, &e1c, &e2c, blame);
                if matches!(m2, Mutability::Mutable | Mutability::Unique) {
                    self.sub(env, &e2c, &e1c, blame);
                }
                let l = lhs();
                self.push_sub_pred(env, l, t2.pred.clone(), Sort::Ref, blame);
            }
            (Base::Obj(c1, m1, a1), Base::Obj(c2, m2, a2)) => {
                if !self.ct.is_subclass(c1, c2) {
                    return self.base_error_blamed(
                        env,
                        blame,
                        format!("{c1} is not a subtype of {c2}"),
                    );
                }
                if !m1.satisfies(*m2) {
                    return self.base_error_blamed(
                        env,
                        blame,
                        format!(
                            "mutability {} does not satisfy {}",
                            m1.abbrev(),
                            m2.abbrev()
                        ),
                    );
                }
                for (x, y) in a1.clone().iter().zip(a2.clone().iter()) {
                    self.sub(env, x, y, blame);
                    self.sub(env, y, x, blame);
                }
                let l = lhs();
                self.push_sub_pred(env, l, t2.pred.clone(), Sort::Ref, blame);
            }
            (Base::Fun(f1), Base::Fun(f2)) => {
                let (f1, f2) = (f1.clone(), f2.clone());
                if f1.params.len() > f2.params.len() {
                    return self.base_error_blamed(
                        env,
                        blame,
                        format!(
                            "function takes {} parameters, expected at most {}",
                            f1.params.len(),
                            f2.params.len()
                        ),
                    );
                }
                // Rename f1's parameters to f2's names.
                let mut rename = Subst::new();
                for ((x1, _), (x2, _)) in f1.params.iter().zip(f2.params.iter()) {
                    if x1 != x2 {
                        rename.push(x1.clone(), Term::var(x2.clone()));
                    }
                }
                let mut env2 = env.clone();
                for (x2, t2p) in &f2.params {
                    env2.bind(x2.clone(), t2p.clone());
                }
                for ((_, t1p), (_, t2p)) in f1.params.iter().zip(f2.params.iter()) {
                    let t1r = t1p.subst(&rename);
                    self.sub(&env2, t2p, &t1r, blame); // contravariant
                }
                let r1 = f1.ret.subst(&rename);
                self.sub(&env2, &r1, &f2.ret, blame);
            }
            (Base::Union(parts), _) => {
                let parts = parts.clone();
                for part in &parts {
                    let tagged = Pred::and(vec![
                        t1.pred.clone(),
                        self.tag_pred(&part.base),
                        part.pred.clone(),
                    ]);
                    // Find a compatible target.
                    let target: Option<RType> = match &t2.base {
                        Base::Union(t2parts) => t2parts
                            .iter()
                            .find(|q| self.base_compat(&part.base, &q.base))
                            .cloned()
                            .map(|q| q.strengthen(t2.pred.clone())),
                        b2 if self.base_compat(&part.base, b2) => Some(t2.clone()),
                        _ => None,
                    };
                    match target {
                        Some(tgt) => {
                            // Skip parts immediately refutable from the
                            // environment (cheap narrowing).
                            if !self.refuted(env, &[tagged]) {
                                let strong = part.clone().strengthen(t1.pred.clone());
                                self.sub(env, &strong, &tgt, blame);
                            }
                        }
                        None => {
                            // No structural target: the part must be DEAD.
                            // Defer the refutation so κ solutions (e.g.
                            // `ttag(v) = "number"` on a Φ variable) can
                            // participate (§4.2 narrowing). The blame
                            // keeps the enclosing obligation's kind — a
                            // possibly-null field read stays a field-read
                            // failure — with the unrefuted part named in
                            // the detail.
                            let mut b = blame.clone();
                            b.detail = format!(
                                "{}union part {} does not fit {}",
                                prefix(&blame.detail),
                                part.base.describe(),
                                t2.base.describe()
                            );
                            self.push_sub_pred(env, tagged, Pred::False, Sort::Ref, &b);
                        }
                    }
                }
            }
            (_, Base::Union(parts)) => {
                let target = parts
                    .iter()
                    .find(|q| self.base_compat(&t1.base, &q.base))
                    .cloned();
                match target {
                    Some(tgt) => {
                        let tgt = tgt.strengthen(t2.pred.clone());
                        self.sub(env, &t1, &tgt, blame)
                    }
                    None => self.base_error_blamed(
                        env,
                        blame,
                        format!(
                            "{} is not part of union {}",
                            t1.base.describe(),
                            t2.base.describe()
                        ),
                    ),
                }
            }
            (b1, b2) => self.base_error_blamed(
                env,
                blame,
                format!("base type mismatch, {} vs {}", b1.describe(), b2.describe()),
            ),
        }
    }

    pub(crate) fn base_compat(&self, b1: &Base, b2: &Base) -> bool {
        match (b1, b2) {
            (Base::Prim(a), Base::Prim(b)) => a == b,
            (Base::Bv(_), Base::Bv(_)) => true,
            (Base::Arr(..), Base::Arr(..)) => true,
            (Base::Obj(c1, _, _), Base::Obj(c2, _, _)) => self.ct.is_subclass(c1, c2),
            (Base::Fun(_), Base::Fun(_)) => true,
            (Base::TVar(a), Base::TVar(b)) => a == b,
            (Base::Infer(_), _) | (_, Base::Infer(_)) => true,
            _ => false,
        }
    }

    // ----------------------------------------------------------- guards ---

    /// A predicate implied by `e` being truthy (conservatively `true`).
    pub(crate) fn guard_pos(&self, e: &IrExpr, env: &Env) -> Pred {
        match e {
            IrExpr::Bool(b, _) => {
                if *b {
                    Pred::True
                } else {
                    Pred::False
                }
            }
            IrExpr::Unary(UnOp::Not, x, _) => self.guard_neg(x, env),
            IrExpr::Binary(BinOpE::And, a, b, _) => {
                Pred::and(vec![self.guard_pos(a, env), self.guard_pos(b, env)])
            }
            IrExpr::Binary(BinOpE::Or, a, b, _) => {
                Pred::or(vec![self.guard_pos(a, env), self.guard_pos(b, env)])
            }
            IrExpr::Binary(op, a, b, _) => {
                let cmp = match op {
                    BinOpE::Lt => Some(CmpOp::Lt),
                    BinOpE::Le => Some(CmpOp::Le),
                    BinOpE::Gt => Some(CmpOp::Gt),
                    BinOpE::Ge => Some(CmpOp::Ge),
                    BinOpE::Eq => Some(CmpOp::Eq),
                    BinOpE::Ne => Some(CmpOp::Ne),
                    _ => None,
                };
                match (cmp, self.term_of(a, env), self.term_of(b, env)) {
                    (Some(op), Some(ta), Some(tb)) => Pred::cmp(op, ta, tb),
                    _ => match (op, self.term_of(e, env)) {
                        // A bit-vector test like `flags & MASK`.
                        (BinOpE::BitAnd | BinOpE::BitOr, Some(t)) => {
                            Pred::cmp(CmpOp::Ne, t, Term::bv(0))
                        }
                        _ => Pred::True,
                    },
                }
            }
            _ => match self.term_of(e, env) {
                Some(t) => self.truthy_pred(e, t, env),
                None => Pred::True,
            },
        }
    }

    /// A predicate implied by `e` being falsy.
    pub(crate) fn guard_neg(&self, e: &IrExpr, env: &Env) -> Pred {
        match e {
            IrExpr::Bool(b, _) => {
                if *b {
                    Pred::False
                } else {
                    Pred::True
                }
            }
            IrExpr::Unary(UnOp::Not, x, _) => self.guard_pos(x, env),
            IrExpr::Binary(BinOpE::And, a, b, _) => {
                Pred::or(vec![self.guard_neg(a, env), self.guard_neg(b, env)])
            }
            IrExpr::Binary(BinOpE::Or, a, b, _) => {
                Pred::and(vec![self.guard_neg(a, env), self.guard_neg(b, env)])
            }
            IrExpr::Binary(op, a, b, _) => {
                let cmp = match op {
                    BinOpE::Lt => Some(CmpOp::Ge),
                    BinOpE::Le => Some(CmpOp::Gt),
                    BinOpE::Gt => Some(CmpOp::Le),
                    BinOpE::Ge => Some(CmpOp::Lt),
                    BinOpE::Eq => Some(CmpOp::Ne),
                    BinOpE::Ne => Some(CmpOp::Eq),
                    _ => None,
                };
                match (cmp, self.term_of(a, env), self.term_of(b, env)) {
                    (Some(op), Some(ta), Some(tb)) => Pred::cmp(op, ta, tb),
                    _ => match (op, self.term_of(e, env)) {
                        (BinOpE::BitAnd | BinOpE::BitOr, Some(t)) => {
                            Pred::cmp(CmpOp::Eq, t, Term::bv(0))
                        }
                        _ => Pred::True,
                    },
                }
            }
            _ => match self.term_of(e, env) {
                Some(t) => Pred::not(self.truthy_pred(e, t, env)),
                None => Pred::True,
            },
        }
    }

    /// Truthiness of a term, by the sort of the expression's type.
    /// For reference sorts we only use `≠ null ∧ ≠ undefined` (weaker than
    /// JS truthiness, hence sound as a guard hypothesis).
    pub(crate) fn truthy_pred(&self, e: &IrExpr, t: Term, env: &Env) -> Pred {
        let sort = self.quick_type(e, env).map(|ty| ty.sort());
        match sort {
            Some(Sort::Bool) => Pred::TermPred(t),
            Some(Sort::Int) => Pred::cmp(CmpOp::Ne, t, Term::int(0)),
            Some(Sort::Bv32) => Pred::cmp(CmpOp::Ne, t, Term::bv(0)),
            Some(Sort::Ref) => Pred::and(vec![
                Pred::cmp(CmpOp::Ne, t.clone(), Term::app("nullv", vec![])),
                Pred::cmp(CmpOp::Ne, t, Term::app("undefv", vec![])),
            ]),
            _ => Pred::True,
        }
    }

    /// A logic term denoting `e`, when one exists (variables, literals,
    /// immutable field chains, `length`, arithmetic, `typeof`).
    pub(crate) fn term_of(&self, e: &IrExpr, env: &Env) -> Option<Term> {
        match e {
            IrExpr::Num(n, _) => Some(Term::int(*n)),
            IrExpr::Bv(n, _) => Some(Term::bv(*n)),
            IrExpr::Str(s, _) => Some(Term::str(s.clone())),
            IrExpr::Bool(b, _) => Some(Term::bool(*b)),
            IrExpr::Null(_) => Some(Term::app("nullv", vec![])),
            IrExpr::Undefined(_) => Some(Term::app("undefv", vec![])),
            IrExpr::Var(x, _) => {
                if env.lookup(x).is_some() {
                    Some(Term::var(x.clone()))
                } else {
                    None
                }
            }
            IrExpr::This(_) => env.lookup(&Sym::from("this")).map(|_| Term::this()),
            IrExpr::Field(b, f, _) => {
                // Enum member?
                if let IrExpr::Var(n, _) = b.as_ref() {
                    if env.lookup(n).is_none() {
                        if let Some(members) = self.ct.enums.get(n) {
                            return members.get(f).map(|v| Term::bv(*v));
                        }
                    }
                }
                let bt = self.quick_type(b, env)?;
                let tb = self.term_of(b, env)?;
                match &bt.base {
                    Base::Arr(..) if f.as_str() == "length" => Some(Term::len_of(tb)),
                    Base::Prim(Prim::Str) if f.as_str() == "length" => Some(Term::len_of(tb)),
                    Base::Obj(c, _, _) => {
                        let fi = self.ct.lookup_field(c, f)?;
                        if fi.imm {
                            Some(Term::field(tb, f.clone()))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            IrExpr::Unary(UnOp::TypeOf, x, _) => Some(Term::ttag_of(self.term_of(x, env)?)),
            IrExpr::Unary(UnOp::Neg, x, _) => Some(Term::neg(self.term_of(x, env)?)),
            IrExpr::Binary(op, a, b, _) => {
                let bop = match op {
                    BinOpE::Add => rsc_logic::BinOp::Add,
                    BinOpE::Sub => rsc_logic::BinOp::Sub,
                    BinOpE::Mul => rsc_logic::BinOp::Mul,
                    BinOpE::Div => rsc_logic::BinOp::Div,
                    BinOpE::Mod => rsc_logic::BinOp::Mod,
                    BinOpE::BitAnd => rsc_logic::BinOp::BvAnd,
                    BinOpE::BitOr => rsc_logic::BinOp::BvOr,
                    _ => return None,
                };
                let ta = self.coerce_bv_lit(op, self.term_of(a, env)?);
                let tb = self.coerce_bv_lit(op, self.term_of(b, env)?);
                Some(Term::bin(bop, ta, tb))
            }
            _ => None,
        }
    }

    pub(crate) fn coerce_bv_lit(&self, op: &BinOpE, t: Term) -> Term {
        if matches!(op, BinOpE::BitAnd | BinOpE::BitOr) {
            if let Term::IntLit(n) = t {
                if (0..=u32::MAX as i64).contains(&n) {
                    return Term::bv(n as u32);
                }
            }
        }
        t
    }

    /// A cheap, constraint-free type lookup used by guards and `term_of`.
    pub(crate) fn quick_type(&self, e: &IrExpr, env: &Env) -> Option<RType> {
        match e {
            IrExpr::Var(x, _) => env
                .lookup(x)
                .cloned()
                .or_else(|| self.declares.get(x).cloned()),
            IrExpr::This(_) => env.lookup(&Sym::from("this")).cloned(),
            IrExpr::Num(..) => Some(RType::number()),
            IrExpr::Bv(..) => Some(RType::trivial(Base::Bv(Sym::from("bitvector32")))),
            IrExpr::Str(..) => Some(RType::string()),
            IrExpr::Bool(..) => Some(RType::boolean()),
            IrExpr::Null(_) => Some(RType::null()),
            IrExpr::Undefined(_) => Some(RType::undefined()),
            IrExpr::Field(b, f, _) => {
                if let IrExpr::Var(n, _) = b.as_ref() {
                    if env.lookup(n).is_none() && self.ct.enums.contains_key(n) {
                        return Some(RType::trivial(Base::Bv(n.clone())));
                    }
                }
                let bt = self.quick_type(b, env)?;
                match &bt.base {
                    Base::Arr(..) if f.as_str() == "length" => Some(RType::number()),
                    Base::Obj(c, _, _) => self.ct.lookup_field(c, f).map(|fi| fi.ty.clone()),
                    Base::Union(parts) => parts.iter().find_map(|p| {
                        if let Base::Obj(c, _, _) = &p.base {
                            self.ct.lookup_field(c, f).map(|fi| fi.ty.clone())
                        } else if matches!(p.base, Base::Arr(..)) && f.as_str() == "length" {
                            Some(RType::number())
                        } else {
                            None
                        }
                    }),
                    _ => None,
                }
            }
            IrExpr::Unary(UnOp::TypeOf, _, _) => Some(RType::string()),
            IrExpr::Unary(UnOp::Not, _, _) => Some(RType::boolean()),
            IrExpr::Unary(UnOp::Neg, _, _) => Some(RType::number()),
            IrExpr::Binary(op, a, _, _) => match op {
                BinOpE::Add | BinOpE::Sub | BinOpE::Mul | BinOpE::Div | BinOpE::Mod => {
                    Some(RType::number())
                }
                BinOpE::BitAnd | BinOpE::BitOr => self.quick_type(a, env),
                _ => Some(RType::boolean()),
            },
            _ => None,
        }
    }
}

/// `RSC_DEBUG` dump of one solved bundle: κ solutions and failed
/// constraints under the solution.
fn debug_dump(b: &ConstraintBundle, result: &LiquidResult) {
    for (id, kv) in &b.cs.kvars {
        let sol: Vec<String> = result
            .solution
            .of(*id)
            .iter()
            .map(|p| p.to_string())
            .collect();
        eprintln!("[debug] {id} ({}) = {sol:?}", kv.origin);
    }
    for (ci, blame) in &result.failures {
        let c = &b.cs.subs[*ci];
        eprintln!("[debug] FAILED {}", blame.message());
        eprintln!("[debug]   lhs = {}", result.solution.apply(&c.lhs));
        eprintln!("[debug]   rhs = {}", result.solution.apply(&c.rhs));
        for h in c.env.embed() {
            eprintln!("[debug]   hyp {}", result.solution.apply(&h));
        }
    }
}

fn drop_kvars(p: Pred) -> Pred {
    match p {
        Pred::KVar(..) => Pred::True,
        Pred::And(ps) => Pred::and(ps.into_iter().map(drop_kvars).collect()),
        Pred::Or(ps) => Pred::or(ps.into_iter().map(drop_kvars).collect()),
        Pred::Not(q) => match drop_kvars(*q) {
            Pred::True => Pred::True, // ¬κ weakens to true, not false
            q => Pred::not(q),
        },
        Pred::Imp(a, b) => Pred::imp(drop_kvars(*a), drop_kvars(*b)),
        other => other,
    }
}

/// Scans a constructor body for direct `this.f = p` assignments of
/// unmodified constructor parameters, used to seed `new C(...)` result
/// refinements (`ν.f = argᵢ`).
fn scan_ctor_params(c: &IrClass) -> Vec<(Sym, usize)> {
    let mut out = Vec::new();
    let Some(ctor) = &c.ctor else {
        return out;
    };
    let params: Vec<Sym> = ctor.params.iter().map(|(p, _)| p.clone()).collect();
    fn walk(b: &Body, params: &[Sym], out: &mut Vec<(Sym, usize)>) {
        match b {
            Body::Effect { e, rest, .. } => {
                if let IrExpr::FieldAssign(recv, f, val, _) = e {
                    if matches!(recv.as_ref(), IrExpr::This(_)) {
                        if let IrExpr::Var(x, _) = val.as_ref() {
                            if let Some(i) = params.iter().position(|p| p == x) {
                                out.push((f.clone(), i));
                            }
                        }
                    }
                }
                walk(rest, params, out);
            }
            Body::Let { rest, .. } | Body::LetFun { rest, .. } => walk(rest, params, out),
            Body::If { .. } | Body::Loop { .. } => {} // only the linear prefix
            _ => {}
        }
    }
    walk(&ctor.body, &params, &mut out);
    out
}
