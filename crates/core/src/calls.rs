//! Call checking: polymorphic instantiation with κ templates (Step 1 of
//! §2.2.1), intersection-overload selection at call sites, method dispatch
//! with IGJ receiver checks, object construction (T-NEW) and static casts
//! (T-CAST / compatibility subtyping).

use std::collections::HashMap;

use rsc_liquid::{Blame, ObligationKind as K};
use rsc_logic::{CmpOp, Pred, Sort, Subst, Sym, Term};
use rsc_ssa::IrExpr;
use rsc_syntax::{AnnTy, Mutability, Span};

use crate::checker::{Checker, Env};
use crate::diag::Diagnostic;
use crate::rtype::{Base, Prim, RFun, RType};
use crate::synth::apply_tvars;

impl Checker {
    pub(crate) fn synth_call(
        &mut self,
        callee: &IrExpr,
        args: &[IrExpr],
        span: Span,
        env: &mut Env,
    ) -> RType {
        // --- built-ins -------------------------------------------------
        if let IrExpr::Var(name, _) = callee {
            match name.as_str() {
                "$ite" => return self.synth_ite(args, span, env),
                "assert" => {
                    let t = self.synth(&args[0], env);
                    let term = self.term_of(&args[0], env);
                    let mut lhs = self.embed_pred(&t);
                    if let Some(tm) = term {
                        lhs = Pred::and(vec![lhs, Pred::vv_eq(tm)]);
                    }
                    let rhs = match t.sort() {
                        Sort::Bool => Pred::TermPred(Term::vv()),
                        Sort::Int => Pred::cmp(CmpOp::Ne, Term::vv(), Term::int(0)),
                        Sort::Bv32 => Pred::cmp(CmpOp::Ne, Term::vv(), Term::bv(0)),
                        _ => Pred::and(vec![
                            Pred::cmp(CmpOp::Ne, Term::vv(), Term::app("nullv", vec![])),
                            Pred::cmp(CmpOp::Ne, Term::vv(), Term::app("undefv", vec![])),
                        ]),
                    };
                    let blame = Blame::new(K::Assertion, "assert must hold", span);
                    self.push_sub_pred(env, lhs, rhs, t.sort(), &blame);
                    return RType::void();
                }
                "assume" => {
                    let _ = self.synth(&args[0], env);
                    let g = self.guard_pos(&args[0], env);
                    env.guard(g);
                    return RType::void();
                }
                _ => {}
            }
            // Unannotated closure called directly: not supported (it has
            // no signature to check against).
            if self.deferred.contains_key(name) && env.lookup(name).is_none() {
                self.diags.push(Diagnostic::error(
                    format!(
                        "function {name} has no signature; annotate it or pass it to a typed \
                         higher-order function"
                    ),
                    span,
                ));
                return RType::undefined();
            }
        }

        // --- resolve the callee's signature(s) ---------------------------
        if let IrExpr::Field(obj, m, _) = callee {
            return self.synth_method_call(obj, m, args, span, env);
        }
        let rfuns: Vec<RFun> = match callee {
            IrExpr::Var(name, _) => {
                if let Some(t) = env.lookup(name).cloned() {
                    match &t.base {
                        Base::Fun(f) => vec![(**f).clone()],
                        Base::Union(_) | Base::Infer(_) => {
                            self.base_error(env, span, format!("{name} is not a function"));
                            return RType::undefined();
                        }
                        other => {
                            self.base_error(
                                env,
                                span,
                                format!("calling non-function {}", other.describe()),
                            );
                            return RType::undefined();
                        }
                    }
                } else if let Some(t) = self.declares.get(name).cloned() {
                    match &t.base {
                        Base::Fun(f) => vec![(**f).clone()],
                        _ => {
                            self.base_error(env, span, format!("{name} is not a function"));
                            return RType::undefined();
                        }
                    }
                } else if let Some(f) = self.funs.get(name).cloned() {
                    let mut out = Vec::new();
                    for sig in &f.sigs {
                        let tp = sig.tparams.iter().cloned().collect();
                        match self.ct.resolve_funty(sig, &tp) {
                            Ok(rf) => out.push(rf),
                            Err(e) => {
                                self.diags.push(Diagnostic::error(e.0, span));
                            }
                        }
                    }
                    out
                } else {
                    self.diags
                        .push(Diagnostic::error(format!("unbound function {name}"), span));
                    return RType::undefined();
                }
            }
            other => {
                let t = self.synth(other, env);
                match &t.base {
                    Base::Fun(f) => vec![(**f).clone()],
                    b => {
                        self.base_error(
                            env,
                            span,
                            format!("calling non-function {}", b.describe()),
                        );
                        return RType::undefined();
                    }
                }
            }
        };
        if rfuns.is_empty() {
            return RType::undefined();
        }
        let rf = self.select_overload(&rfuns, args, env);
        self.apply_fun(&rf, args, None, span, env)
    }

    /// Picks the intersection conjunct whose arity and parameter bases
    /// best match the arguments (callers may use any conjunct, §2.1.2).
    fn select_overload(&mut self, rfuns: &[RFun], args: &[IrExpr], env: &Env) -> RFun {
        if rfuns.len() == 1 {
            return rfuns[0].clone();
        }
        let mut best: Option<(usize, i32)> = None;
        for (i, rf) in rfuns.iter().enumerate() {
            if rf.params.len() != args.len() {
                continue;
            }
            let mut score = 1;
            for ((_, pt), a) in rf.params.iter().zip(args) {
                if let Some(at) = self.quick_type(a, env) {
                    let compat = match (&pt.base, &at.base) {
                        (Base::TVar(_), _) | (_, Base::TVar(_)) => true,
                        (Base::Union(ps), b) => ps.iter().any(|p| self.base_compat(b, &p.base)),
                        (pb, ab) => self.base_compat(ab, pb),
                    };
                    score += if compat { 10 } else { -10 };
                }
            }
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        match best {
            Some((i, _)) => rfuns[i].clone(),
            None => rfuns[0].clone(),
        }
    }

    fn synth_method_call(
        &mut self,
        obj: &IrExpr,
        m: &Sym,
        args: &[IrExpr],
        span: Span,
        env: &mut Env,
    ) -> RType {
        // Enum "method"? No — enums have no methods. Array methods:
        let tr = self.synth(obj, env);
        let tr = self.resolve_infer(&tr);
        let recv_term = self.term_of_or_tmp_pub(obj, &tr, env);
        match &tr.base {
            Base::Arr(..) => match m.as_str() {
                "push" | "pop" | "shift" | "unshift" | "splice" => {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "Array.{m} changes the array length and is outside the verified \
                                 fragment (cf. §5.3 of the paper); restructure with fixed-size \
                                 arrays"
                        ),
                        span,
                    ));
                    RType::number()
                }
                other => {
                    self.base_error(env, span, format!("array has no method {other}"));
                    RType::undefined()
                }
            },
            Base::Obj(c, recv_mut, targs) => {
                let Some(mi) = self.ct.lookup_method(c, m).cloned() else {
                    self.base_error(env, span, format!("{c} has no method {m}"));
                    return RType::undefined();
                };
                if !recv_mut.satisfies(mi.recv) {
                    self.base_error(
                        env,
                        span,
                        format!(
                            "method {m} requires a @{} receiver, but the receiver is {}",
                            match mi.recv {
                                Mutability::Mutable => "Mutable",
                                Mutability::Immutable => "Immutable",
                                Mutability::ReadOnly => "ReadOnly",
                                Mutability::Unique => "Unique",
                            },
                            recv_mut.abbrev()
                        ),
                    );
                }
                // Substitute class type args and the receiver into the sig.
                let mut fun = mi.fun.clone();
                if let Some(info) = self.ct.objs.get(c) {
                    let map: HashMap<Sym, RType> = info
                        .tparams
                        .iter()
                        .cloned()
                        .zip(targs.iter().cloned())
                        .collect();
                    if !map.is_empty() {
                        fun = RFun {
                            tparams: fun.tparams.clone(),
                            params: fun
                                .params
                                .iter()
                                .map(|(x, t)| (x.clone(), apply_tvars(t, &map)))
                                .collect(),
                            ret: apply_tvars(&fun.ret, &map),
                        };
                    }
                }
                let theta = Subst::one("this", recv_term);
                let fun = RFun {
                    tparams: fun.tparams.clone(),
                    params: fun
                        .params
                        .iter()
                        .map(|(x, t)| (x.clone(), t.subst(&theta)))
                        .collect(),
                    ret: fun.ret.subst(&theta),
                };
                self.apply_fun(&fun, args, None, span, env)
            }
            Base::Union(parts) => {
                // Narrow to the object part; null/undefined parts must be
                // refuted by the environment.
                match parts
                    .iter()
                    .find(|p| matches!(p.base, Base::Obj(..)))
                    .cloned()
                {
                    Some(objpart) => {
                        let lhs = tr.clone().selfify(recv_term.clone());
                        let blame = Blame::new(
                            K::Narrowing,
                            format!("method call .{m} on a possibly null/undefined value"),
                            span,
                        );
                        self.sub(env, &lhs, &objpart, &blame);
                        // Re-dispatch with the narrowed receiver by
                        // rebinding a temp of the object type.
                        let tmp = self.fresh_tmp();
                        env.bind(tmp.clone(), objpart.clone().selfify(recv_term.clone()));
                        let obj2 = rsc_ssa::IrExpr::Var(tmp, span);
                        self.synth_method_call(&obj2, m, args, span, env)
                    }
                    None => {
                        self.base_error(
                            env,
                            span,
                            format!("method call .{m} on {}", tr.base.describe()),
                        );
                        RType::undefined()
                    }
                }
            }
            other => {
                self.base_error(env, span, format!("method .{m} on {}", other.describe()));
                RType::undefined()
            }
        }
    }

    pub(crate) fn term_of_or_tmp_pub(&mut self, e: &IrExpr, ty: &RType, env: &mut Env) -> Term {
        if let Some(t) = self.term_of(e, env) {
            return t;
        }
        let tmp = self.fresh_tmp();
        env.bind(tmp.clone(), ty.clone());
        Term::var(tmp)
    }

    /// The core of T-INV: instantiate type parameters with κ templates,
    /// check arguments against (substituted) parameter types, and return
    /// the (substituted) result type.
    fn apply_fun(
        &mut self,
        rf: &RFun,
        args: &[IrExpr],
        _recv: Option<Term>,
        span: Span,
        env: &mut Env,
    ) -> RType {
        if args.len() > rf.params.len() {
            self.base_error(
                env,
                span,
                format!(
                    "call supplies {} arguments but the function takes {}",
                    args.len(),
                    rf.params.len()
                ),
            );
        }
        // Synthesize argument types (deferring unannotated closures).
        let mut arg_tys: Vec<Option<RType>> = Vec::new();
        for a in args {
            let deferred = matches!(a, IrExpr::Var(x, _)
                if self.deferred.contains_key(x) && env.lookup(x).is_none());
            if deferred {
                arg_tys.push(None);
            } else {
                arg_tys.push(Some(self.synth(a, env)));
            }
        }
        // Step 1 (§2.2.1): instantiate type variables. Base skeletons come
        // from unification of declared parameter bases against argument
        // bases; refinements become fresh κ templates.
        let mut base_map: HashMap<Sym, Base> = HashMap::new();
        for ((_, pt), at) in rf.params.iter().zip(&arg_tys) {
            if let Some(at) = at {
                unify_base(&pt.base, &self.resolve_infer(at).base, &mut base_map);
            }
        }
        let scope: Vec<(Sym, Sort)> = env
            .binds
            .iter()
            .map(|(x, t)| (x.clone(), t.sort()))
            .collect();
        let mut tvar_map: HashMap<Sym, RType> = HashMap::new();
        for a in &rf.tparams {
            let template = match base_map.get(a) {
                Some(b) => {
                    let t0 = RType::trivial(b.clone());
                    let k = self.cs.fresh_kvar(
                        t0.sort(),
                        scope.clone(),
                        format!("instantiation of {a} at line {}", span.line),
                    );
                    RType {
                        base: b.clone(),
                        pred: Pred::KVar(k, Subst::new()),
                    }
                }
                None => {
                    let u = self.next_infer;
                    self.next_infer += 1;
                    RType::trivial(Base::Infer(u))
                }
            };
            tvar_map.insert(a.clone(), template);
        }
        // Dependent substitution: parameter names ↦ argument terms.
        let mut theta = Subst::new();
        for (i, (x, pt)) in rf.params.iter().enumerate() {
            let term = match args.get(i) {
                Some(a) => match &arg_tys[i] {
                    Some(t) => self.term_of_or_tmp_pub(a, t, env),
                    None => Term::var(self.fresh_tmp()),
                },
                None => {
                    // Missing argument: undefined.
                    let _ = pt;
                    Term::app("undefv", vec![])
                }
            };
            theta.push(x.clone(), term);
        }
        // Check arguments.
        for (i, (_, pt)) in rf.params.iter().enumerate() {
            let expected = apply_tvars(pt, &tvar_map).subst(&theta);
            match args.get(i) {
                None => {
                    // Missing argument must be allowed to be undefined.
                    let u = RType::undefined();
                    let blame = Blame::new(K::CallArgument, "missing optional argument", span);
                    self.sub(env, &u, &expected, &blame);
                }
                Some(a) => match &arg_tys[i] {
                    Some(at) => {
                        let lhs = match self.term_of(a, env) {
                            Some(t) => at.clone().selfify(t),
                            None => at.clone(),
                        };
                        let blame =
                            Blame::new(K::CallArgument, format!("argument {}", i + 1), span);
                        self.sub(env, &lhs, &expected, &blame);
                    }
                    None => {
                        // Deferred closure: check its body against the
                        // instantiated expected arrow type.
                        let IrExpr::Var(name, _) = a else {
                            unreachable!()
                        };
                        match &self.resolve_infer(&expected).base {
                            Base::Fun(ef) => {
                                let ef = (**ef).clone();
                                self.check_deferred_against(name, &ef, span);
                            }
                            _ => self.base_error(
                                env,
                                span,
                                format!(
                                    "argument {} is a function, expected {}",
                                    i + 1,
                                    expected.base.describe()
                                ),
                            ),
                        }
                    }
                },
            }
        }
        apply_tvars(&rf.ret, &tvar_map).subst(&theta)
    }

    fn synth_ite(&mut self, args: &[IrExpr], span: Span, env: &mut Env) -> RType {
        let _ = self.synth(&args[0], env);
        let (gp, gn) = if self.opts.path_sensitivity {
            (self.guard_pos(&args[0], env), self.guard_neg(&args[0], env))
        } else {
            (Pred::True, Pred::True)
        };
        let mut env1 = env.clone();
        env1.guard(gp);
        let t1 = self.synth(&args[1], &mut env1);
        let mut env2 = env.clone();
        env2.guard(gn);
        let t2 = self.synth(&args[2], &mut env2);
        // Join through a fresh κ (mirrors T-LETIF).
        let b = self.join_base(&t1, &t2);
        let joined = RType::trivial(b);
        if matches!(joined.base, Base::Union(_)) {
            return joined;
        }
        let scope: Vec<(Sym, Sort)> = env
            .binds
            .iter()
            .map(|(x, t)| (x.clone(), t.sort()))
            .collect();
        let k = self.cs.fresh_kvar(
            joined.sort(),
            scope,
            format!("ternary at line {}", span.line),
        );
        let template = RType {
            base: joined.base,
            pred: Pred::KVar(k, Subst::new()),
        };
        let lhs1 = match self.term_of(&args[1], &env1) {
            Some(t) => t1.clone().selfify(t),
            None => t1,
        };
        let blame = Blame::new(K::Assignment, "ternary then-value", span);
        self.sub(&env1, &lhs1, &template, &blame);
        let lhs2 = match self.term_of(&args[2], &env2) {
            Some(t) => t2.clone().selfify(t),
            None => t2,
        };
        let blame = Blame::new(K::Assignment, "ternary else-value", span);
        self.sub(&env2, &lhs2, &template, &blame);
        template
    }

    // ------------------------------------------------------------ new ---

    pub(crate) fn synth_new(
        &mut self,
        cname: &Sym,
        targs: &[AnnTy],
        args: &[IrExpr],
        span: Span,
        env: &mut Env,
    ) -> RType {
        if cname.as_str() == "Array" {
            return self.synth_new_array(targs, args, span, env);
        }
        let Some(info) = self.ct.objs.get(cname).cloned() else {
            self.diags
                .push(Diagnostic::error(format!("unknown class {cname}"), span));
            return RType::undefined();
        };
        if info.is_interface {
            self.diags.push(Diagnostic::error(
                format!("cannot instantiate interface {cname}"),
                span,
            ));
            return RType::undefined();
        }
        let params = info.ctor_params.clone().unwrap_or_default();
        if args.len() != params.len() {
            self.base_error(
                env,
                span,
                format!(
                    "constructor of {cname} takes {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
            );
        }
        // Check arguments against constructor parameter types with the
        // dependent substitution param ↦ arg term.
        let mut arg_terms: Vec<Term> = Vec::new();
        let mut theta = Subst::new();
        let mut arg_tys = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let at = self.synth(a, env);
            let term = self.term_of_or_tmp_pub(a, &at, env);
            if let Some((x, _)) = params.get(i) {
                theta.push(x.clone(), term.clone());
            }
            arg_terms.push(term);
            arg_tys.push(at);
        }
        for (i, (_, pt)) in params.iter().enumerate() {
            if let Some(at) = arg_tys.get(i) {
                let expected = pt.subst(&theta);
                let lhs = at.clone().selfify(arg_terms[i].clone());
                let blame = Blame::new(
                    K::CallArgument,
                    format!("constructor argument {} of new {cname}", i + 1),
                    span,
                );
                self.sub(env, &lhs, &expected, &blame);
            }
        }
        // Result type (T-NEW): class inclusion + invariants + equalities
        // for immutable fields directly initialized from parameters.
        let mut pred = self.ct.inv_pred(cname, &Term::vv());
        if let Some(fieldmap) = self.ctor_param_fields.get(cname) {
            for (f, pi) in fieldmap.clone() {
                if let Some(t) = arg_terms.get(pi) {
                    let is_imm = self
                        .ct
                        .lookup_field(cname, &f)
                        .map(|fi| fi.imm)
                        .unwrap_or(false);
                    if is_imm {
                        pred = Pred::and(vec![
                            pred,
                            Pred::eq(Term::field(Term::vv(), f.clone()), t.clone()),
                        ]);
                    }
                }
            }
        }
        RType {
            base: Base::Obj(cname.clone(), Mutability::Mutable, vec![]),
            pred,
        }
    }

    fn synth_new_array(
        &mut self,
        targs: &[AnnTy],
        args: &[IrExpr],
        span: Span,
        env: &mut Env,
    ) -> RType {
        let elem = match targs.first() {
            Some(t) => match self.ct.resolve_in(t, &env.tparams) {
                Ok(r) => r,
                Err(e) => {
                    self.diags.push(Diagnostic::error(e.0, span));
                    RType::number()
                }
            },
            None => {
                let u = self.next_infer;
                self.next_infer += 1;
                RType::trivial(Base::Infer(u))
            }
        };
        match args {
            [n] => {
                let tn = self.synth(n, env);
                let blame = Blame::new(K::CallArgument, "array length", span);
                self.sub(
                    env,
                    &tn,
                    &RType {
                        base: Base::Prim(Prim::Num),
                        pred: Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
                    },
                    &blame,
                );
                let term = self.term_of_or_tmp_pub(n, &tn, env);
                RType {
                    base: Base::Arr(Box::new(elem), Mutability::Mutable),
                    pred: Pred::eq(Term::len_of(Term::vv()), term),
                }
            }
            _ => {
                let blame = Blame::new(K::CallArgument, "array element", span);
                for a in args {
                    let at = self.synth(a, env);
                    self.sub(env, &at, &elem, &blame);
                }
                RType {
                    base: Base::Arr(Box::new(elem), Mutability::Mutable),
                    pred: Pred::eq(Term::len_of(Term::vv()), Term::int(args.len() as i64)),
                }
            }
        }
    }

    // ----------------------------------------------------------- casts ---

    /// T-CAST via compatibility subtyping (Definition 1): `⟨S →Γ ⌊T⌋⟩`
    /// succeeds when Γ proves `inv(T, ν)`; the result is `T ◁ p` where `p`
    /// is the source refinement. Statically verified casts never fail at
    /// run time (Corollary 4).
    pub(crate) fn synth_cast(
        &mut self,
        ann: &AnnTy,
        inner: &IrExpr,
        span: Span,
        env: &mut Env,
    ) -> RType {
        let target = match self.ct.resolve_in(ann, &env.tparams) {
            Ok(t) => t,
            Err(e) => {
                self.diags.push(Diagnostic::error(e.0, span));
                return RType::undefined();
            }
        };
        let te = self.synth(inner, env);
        let te = self.resolve_infer(&te);
        let term = self.term_of_or_tmp_pub(inner, &te, env);
        match (&te.base, &target.base) {
            (Base::Obj(c1, m1, _), Base::Obj(c2, m2, _)) => {
                if *m1 == Mutability::Unique && m1 != m2 {
                    self.diags.push(Diagnostic::error(
                        "unique references cannot be cast to a different mutability (§4.4)",
                        span,
                    ));
                }
                if self.ct.is_subclass(c1, c2) {
                    // Upcast: ordinary subsumption.
                    let tgt = target.clone();
                    let lhs = te.clone().selfify(term.clone());
                    let blame = Blame::new(K::Cast, "upcast", span);
                    self.sub(env, &lhs, &tgt, &blame);
                } else {
                    // Downcast: Γ must prove the target's invariants.
                    let lhs = Pred::and(vec![self.embed_pred(&te), Pred::vv_eq(term.clone())]);
                    let rhs = self.ct.inv_pred(c2, &Term::vv());
                    let blame = Blame::new(K::Cast, format!("downcast to {c2}"), span);
                    self.push_sub_pred(env, lhs, rhs, Sort::Ref, &blame);
                }
                // D ◁ p: the target strengthened with the source refinement
                // (and the source value identity when the term is a variable).
                let strengthened = target.clone().strengthen(te.pred.clone());
                match &term {
                    Term::Var(x) => strengthened.selfify(Term::var(x.clone())),
                    _ => strengthened,
                }
            }
            _ => {
                // Non-object casts behave like ascriptions.
                let tgt = target.clone();
                let blame = Blame::new(K::Cast, "cast", span);
                self.sub(env, &te, &tgt, &blame);
                target
            }
        }
    }
}

/// First-order unification of base skeletons: type variables in the
/// declared parameter collect the corresponding argument bases.
fn unify_base(decl: &Base, arg: &Base, out: &mut HashMap<Sym, Base>) {
    match (decl, arg) {
        (Base::TVar(a), b) => {
            out.entry(a.clone()).or_insert_with(|| b.clone());
        }
        (Base::Arr(d, _), Base::Arr(x, _)) => unify_base(&d.base, &x.base, out),
        (Base::Obj(_, _, ds), Base::Obj(_, _, xs)) => {
            for (d, x) in ds.iter().zip(xs) {
                unify_base(&d.base, &x.base, out);
            }
        }
        (Base::Fun(d), Base::Fun(x)) => {
            for ((_, dp), (_, xp)) in d.params.iter().zip(x.params.iter()) {
                unify_base(&dp.base, &xp.base, out);
            }
            unify_base(&d.ret.base, &x.ret.base, out);
        }
        (Base::Union(ds), b) => {
            for d in ds {
                unify_base(&d.base, b, out);
            }
        }
        _ => {}
    }
}
