//! The `rsc` command-line checker: verify `.rsc` files from the shell.
//!
//! ```text
//! cargo run -p rsc_core --bin rsc -- benchmarks/navier-stokes.rsc
//! cargo run -p rsc_core --bin rsc -- --no-path-sensitivity file.rsc
//! cargo run -p rsc_core --bin rsc -- --jobs 4 benchmarks/*.rsc
//! ```
//!
//! Exit code 0 = verified, 1 = verification errors, 2 = usage/IO error.

use rsc_core::{check_program, CheckerOptions};

fn main() {
    let mut opts = CheckerOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut want_jobs = false;
    for arg in std::env::args().skip(1) {
        if want_jobs {
            want_jobs = false;
            opts.jobs = parse_jobs(&arg);
            continue;
        }
        match arg.as_str() {
            "--no-path-sensitivity" => opts.path_sensitivity = false,
            "--no-prelude-qualifiers" => opts.prelude_qualifiers = false,
            "--no-mined-qualifiers" => opts.mine_qualifiers = false,
            "--no-vc-cache" => opts.vc_cache = false,
            "--jobs" | "-j" => want_jobs = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => match other.strip_prefix("--jobs=") {
                Some(n) => opts.jobs = parse_jobs(n),
                None => {
                    eprintln!("rsc: unknown flag {other}");
                    print_usage();
                    std::process::exit(2);
                }
            },
        }
    }
    if want_jobs {
        eprintln!("rsc: --jobs expects a worker count");
        print_usage();
        std::process::exit(2);
    }
    if files.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsc: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        let start = std::time::Instant::now();
        let result = check_program(&src, opts);
        let elapsed = start.elapsed();
        if result.ok() {
            if !quiet {
                println!(
                    "{file}: SAFE ({} constraints, {} κ-vars, {} SMT queries, \
                     {} bundles, {:.0}% VC-cache hits, {:.0?})",
                    result.stats.constraints,
                    result.stats.kvars,
                    result.stats.smt_queries,
                    result.stats.bundles,
                    100.0 * result.stats.cache_hit_rate(),
                    elapsed
                );
            }
        } else {
            failed = true;
            println!(
                "{file}: UNSAFE ({} errors, {:.0?})",
                result.diagnostics.len(),
                elapsed
            );
            for d in &result.diagnostics {
                println!("  {d}");
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn parse_jobs(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("rsc: --jobs expects a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: rsc [--no-path-sensitivity] [--no-prelude-qualifiers] \
         [--no-mined-qualifiers] [--no-vc-cache] [--jobs N] [--quiet] <file.rsc>...\n\
         \n\
         --jobs N  solve constraint bundles on N worker threads\n\
         \u{20}         (default: RSC_JOBS env var, else available cores, max 8)"
    );
}
