//! The class table (structural constraints of Figure 16: `fields`,
//! `hasImm`/`hasMut`, `inv`) and the resolver from surface annotations
//! ([`AnnTy`]) to checker types ([`RType`]), including dependent type
//! alias expansion (`idx<a>`, `grid<this.w, this.h>`, …).

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use rsc_logic::{FunSig, Pred, Sort, Subst, Sym, Term};
use rsc_syntax::ast::{ClassDecl, EnumDecl, FieldMut, InterfaceDecl, TypeAlias};
use rsc_syntax::types::{AnnArg, AnnTy, FunTy};
use rsc_syntax::Mutability;

use crate::rtype::{Base, RFun, RType};

/// A resolved field.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    /// Field name.
    pub name: Sym,
    /// True for `immutable` fields (assignable only during construction;
    /// usable in refinements).
    pub imm: bool,
    /// Declared type; refinements may mention `this`.
    pub ty: RType,
}

/// A resolved method.
#[derive(Clone, Debug)]
pub struct MethodInfo {
    /// Method name.
    pub name: Sym,
    /// Receiver mutability requirement.
    pub recv: Mutability,
    /// Resolved signature.
    pub fun: RFun,
}

/// A class or interface entry.
#[derive(Clone, Debug)]
pub struct ObjInfo {
    /// Name.
    pub name: Sym,
    /// True for interfaces.
    pub is_interface: bool,
    /// Type parameters.
    pub tparams: Vec<Sym>,
    /// Direct supertypes.
    pub extends: Vec<Sym>,
    /// Fields declared here (not inherited).
    pub fields: Vec<FieldInfo>,
    /// Methods declared here.
    pub methods: Vec<MethodInfo>,
    /// Explicit class invariant (over `v`), `true` if absent.
    pub invariant: Pred,
    /// Constructor parameters, if a constructor is declared.
    pub ctor_params: Option<Vec<(Sym, RType)>>,
}

/// An error during type resolution.
#[derive(Clone, Debug)]
pub struct ResolveError(pub String);

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type resolution error: {}", self.0)
    }
}

impl std::error::Error for ResolveError {}

/// The class table: every named object type, enum and alias in the
/// program.
#[derive(Debug, Default)]
pub struct ClassTable {
    /// Classes and interfaces.
    pub objs: HashMap<Sym, ObjInfo>,
    /// Enums: member → 32-bit value.
    pub enums: HashMap<Sym, HashMap<Sym, u32>>,
    aliases: HashMap<Sym, TypeAlias>,
}

impl ClassTable {
    /// Builds the table from declarations (two passes: names, then types).
    pub fn build(
        aliases: &[TypeAlias],
        enums: &[EnumDecl],
        interfaces: &[InterfaceDecl],
        classes: &[ClassDecl],
    ) -> Result<ClassTable, ResolveError> {
        let mut ct = ClassTable::default();
        for a in aliases {
            ct.aliases.insert(a.name.clone(), a.clone());
        }
        for e in enums {
            ct.enums
                .insert(e.name.clone(), e.members.iter().cloned().collect());
        }
        // Pre-declare object names so mutually recursive references resolve.
        for i in interfaces {
            ct.objs.insert(
                i.name.clone(),
                ObjInfo {
                    name: i.name.clone(),
                    is_interface: true,
                    tparams: i.tparams.clone(),
                    extends: i.extends.clone(),
                    fields: Vec::new(),
                    methods: Vec::new(),
                    invariant: Pred::True,
                    ctor_params: None,
                },
            );
        }
        for c in classes {
            ct.objs.insert(
                c.name.clone(),
                ObjInfo {
                    name: c.name.clone(),
                    is_interface: false,
                    tparams: c.tparams.clone(),
                    extends: c.extends.iter().cloned().collect(),
                    fields: Vec::new(),
                    methods: Vec::new(),
                    invariant: c.invariant.clone().unwrap_or(Pred::True),
                    ctor_params: None,
                },
            );
        }
        // Second pass: resolve member types.
        for i in interfaces {
            let tp: HashSet<Sym> = i.tparams.iter().cloned().collect();
            let fields = ct.resolve_fields(&i.fields, &tp)?;
            let methods = ct.resolve_methods_iface(i, &tp)?;
            let e = ct.objs.get_mut(&i.name).unwrap();
            e.fields = fields;
            e.methods = methods;
        }
        for c in classes {
            let tp: HashSet<Sym> = c.tparams.iter().cloned().collect();
            let fields = ct.resolve_fields(&c.fields, &tp)?;
            let mut methods = Vec::new();
            for m in &c.methods {
                methods.push(MethodInfo {
                    name: m.name.clone(),
                    recv: m.recv,
                    fun: ct.resolve_funty(&m.sig, &tp)?,
                });
            }
            let ctor_params = match &c.ctor {
                Some(ctor) => {
                    let mut ps = Vec::new();
                    for (x, t) in &ctor.params {
                        ps.push((x.clone(), ct.resolve_in(t, &tp)?));
                    }
                    Some(ps)
                }
                None => None,
            };
            let e = ct.objs.get_mut(&c.name).unwrap();
            e.fields = fields;
            e.methods = methods;
            e.ctor_params = ctor_params;
        }
        Ok(ct)
    }

    fn resolve_fields(
        &self,
        fields: &[rsc_syntax::ast::FieldDecl],
        tp: &HashSet<Sym>,
    ) -> Result<Vec<FieldInfo>, ResolveError> {
        fields
            .iter()
            .map(|f| {
                Ok(FieldInfo {
                    name: f.name.clone(),
                    imm: f.mutability == FieldMut::Immutable,
                    ty: self.resolve_in(&f.ty, tp)?,
                })
            })
            .collect()
    }

    fn resolve_methods_iface(
        &self,
        i: &InterfaceDecl,
        tp: &HashSet<Sym>,
    ) -> Result<Vec<MethodInfo>, ResolveError> {
        i.methods
            .iter()
            .map(|m| {
                Ok(MethodInfo {
                    name: m.name.clone(),
                    recv: m.recv,
                    fun: self.resolve_funty(&m.sig, tp)?,
                })
            })
            .collect()
    }

    /// All ancestors of `name` (not including itself), transitively.
    pub fn ancestors(&self, name: &Sym) -> Vec<Sym> {
        let mut out = Vec::new();
        let mut stack: Vec<Sym> = match self.objs.get(name) {
            Some(o) => o.extends.clone(),
            None => return out,
        };
        while let Some(n) = stack.pop() {
            if out.contains(&n) {
                continue;
            }
            if let Some(o) = self.objs.get(&n) {
                stack.extend(o.extends.clone());
            }
            out.push(n);
        }
        out
    }

    /// True if `sub` = `sup` or `sup` is an ancestor of `sub`.
    pub fn is_subclass(&self, sub: &Sym, sup: &Sym) -> bool {
        sub == sup || self.ancestors(sub).contains(sup)
    }

    /// Finds a field by walking up the hierarchy.
    pub fn lookup_field(&self, class: &Sym, f: &Sym) -> Option<&FieldInfo> {
        let mut names = vec![class.clone()];
        names.extend(self.ancestors(class));
        for n in names {
            if let Some(o) = self.objs.get(&n) {
                if let Some(fi) = o.fields.iter().find(|fi| &fi.name == f) {
                    return Some(fi);
                }
            }
        }
        None
    }

    /// Finds a method by walking up the hierarchy.
    pub fn lookup_method(&self, class: &Sym, m: &Sym) -> Option<&MethodInfo> {
        let mut names = vec![class.clone()];
        names.extend(self.ancestors(class));
        for n in names {
            if let Some(o) = self.objs.get(&n) {
                if let Some(mi) = o.methods.iter().find(|mi| &mi.name == m) {
                    return Some(mi);
                }
            }
        }
        None
    }

    /// All fields visible on `class` (inherited first).
    pub fn all_fields(&self, class: &Sym) -> Vec<FieldInfo> {
        let mut names = self.ancestors(class);
        names.reverse();
        names.push(class.clone());
        let mut out: Vec<FieldInfo> = Vec::new();
        for n in names {
            if let Some(o) = self.objs.get(&n) {
                for fi in &o.fields {
                    if !out.iter().any(|x| x.name == fi.name) {
                        out.push(fi.clone());
                    }
                }
            }
        }
        out
    }

    /// The invariant `inv(C, t)` (§3.2): inclusion predicates `impl(t, D)`
    /// for `C` and all ancestors, the explicit class invariants, and the
    /// refinements of immutable fields (instantiated at `t`).
    pub fn inv_pred(&self, class: &Sym, t: &Term) -> Pred {
        let mut parts = vec![Pred::App(
            Sym::from("impl"),
            vec![t.clone(), Term::str(class.clone())],
        )];
        for a in self.ancestors(class) {
            parts.push(Pred::App(Sym::from("impl"), vec![t.clone(), Term::str(a)]));
        }
        let self_subst = Subst::one("v", t.clone());
        let mut names = vec![class.clone()];
        names.extend(self.ancestors(class));
        for n in &names {
            if let Some(o) = self.objs.get(n) {
                parts.push(self_subst.apply_pred(&o.invariant));
            }
        }
        for fi in self.all_fields(class) {
            if fi.imm && !matches!(fi.ty.pred, Pred::True) {
                // p[t.f / v, t / this]
                let mut s = Subst::new();
                s.push("v", Term::field(t.clone(), fi.name.clone()));
                s.push("this", t.clone());
                parts.push(s.apply_pred(&fi.ty.pred));
            }
        }
        Pred::and(parts)
    }

    /// Registers the uninterpreted symbols this table needs (field
    /// selectors, null/undefined constants) in a sort environment.
    pub fn register_sorts(&self, env: &mut rsc_logic::SortEnv) {
        env.declare_fun("nullv", FunSig::Fixed(vec![], Sort::Ref));
        env.declare_fun("undefv", FunSig::Fixed(vec![], Sort::Ref));
        let mut seen: HashMap<Sym, Sort> = HashMap::new();
        for o in self.objs.values() {
            for fi in &o.fields {
                let s = fi.ty.sort();
                let entry = seen.entry(fi.name.clone()).or_insert(s);
                // Conflicting sorts across classes degrade to Int: the
                // embedding drops ill-sorted hypotheses conservatively.
                if *entry != s {
                    *entry = Sort::Int;
                }
            }
        }
        for (f, s) in seen {
            env.declare_fun(format!("field${f}"), FunSig::Fixed(vec![Sort::Ref], s));
        }
    }

    // ------------------------------------------------------- resolution ---

    /// Resolves an annotation with no type parameters in scope.
    pub fn resolve(&self, t: &AnnTy) -> Result<RType, ResolveError> {
        self.resolve_in(t, &HashSet::new())
    }

    /// Resolves an annotation with the given rigid type parameters.
    pub fn resolve_in(&self, t: &AnnTy, tparams: &HashSet<Sym>) -> Result<RType, ResolveError> {
        self.go(t, tparams, &HashMap::new(), 0)
    }

    fn go(
        &self,
        t: &AnnTy,
        tparams: &HashSet<Sym>,
        tsubst: &HashMap<Sym, RType>,
        depth: usize,
    ) -> Result<RType, ResolveError> {
        if depth > 32 {
            return Err(ResolveError("type alias expansion too deep".into()));
        }
        match t {
            AnnTy::Refined { vv, base, pred } => {
                let b = self.go(base, tparams, tsubst, depth + 1)?;
                let p = if vv.as_str() == "v" {
                    pred.clone()
                } else {
                    Subst::one(vv.clone(), Term::vv()).apply_pred(pred)
                };
                Ok(b.strengthen(p))
            }
            AnnTy::Array {
                elem,
                mutability,
                nonempty,
            } => {
                let e = self.go(elem, tparams, tsubst, depth + 1)?;
                let mut t = RType::trivial(Base::Arr(Box::new(e), *mutability));
                if *nonempty {
                    t = t.strengthen(RType::nonempty_pred());
                }
                Ok(t)
            }
            AnnTy::Union(parts) => {
                let ps = parts
                    .iter()
                    .map(|p| self.go(p, tparams, tsubst, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(RType::trivial(Base::Union(ps)))
            }
            AnnTy::Arrow(ft) => Ok(RType::trivial(Base::Fun(Rc::new(
                self.resolve_funty_in(ft, tparams, tsubst, depth)?,
            )))),
            AnnTy::Name(n, args) => self.resolve_name(n, args, tparams, tsubst, depth),
        }
    }

    /// Resolves a function type.
    pub fn resolve_funty(&self, ft: &FunTy, tparams: &HashSet<Sym>) -> Result<RFun, ResolveError> {
        self.resolve_funty_in(ft, tparams, &HashMap::new(), 0)
    }

    fn resolve_funty_in(
        &self,
        ft: &FunTy,
        tparams: &HashSet<Sym>,
        tsubst: &HashMap<Sym, RType>,
        depth: usize,
    ) -> Result<RFun, ResolveError> {
        let mut tp = tparams.clone();
        tp.extend(ft.tparams.iter().cloned());
        let mut params = Vec::new();
        for (x, t) in &ft.params {
            params.push((x.clone(), self.go(t, &tp, tsubst, depth + 1)?));
        }
        let ret = self.go(&ft.ret, &tp, tsubst, depth + 1)?;
        Ok(RFun {
            tparams: ft.tparams.clone(),
            params,
            ret,
        })
    }

    fn resolve_name(
        &self,
        n: &Sym,
        args: &[AnnArg],
        tparams: &HashSet<Sym>,
        tsubst: &HashMap<Sym, RType>,
        depth: usize,
    ) -> Result<RType, ResolveError> {
        // Primitives.
        if args.is_empty() {
            match n.as_str() {
                "number" => return Ok(RType::number()),
                "boolean" | "bool" => return Ok(RType::boolean()),
                "string" => return Ok(RType::string()),
                "void" => return Ok(RType::void()),
                "undefined" => return Ok(RType::undefined()),
                "null" => return Ok(RType::null()),
                "bitvector32" => return Ok(RType::trivial(Base::Bv(n.clone()))),
                _ => {}
            }
            if let Some(t) = tsubst.get(n) {
                return Ok(t.clone());
            }
            if tparams.contains(n) {
                return Ok(RType::trivial(Base::TVar(n.clone())));
            }
            if self.enums.contains_key(n) {
                return Ok(RType::trivial(Base::Bv(n.clone())));
            }
        }
        if let Some(alias) = self.aliases.get(n) {
            return self.expand_alias(alias, args, tparams, tsubst, depth);
        }
        if let Some(o) = self.objs.get(n) {
            let mut mutability = Mutability::Mutable;
            let mut targs = Vec::new();
            for a in args {
                match a {
                    AnnArg::Mut(m) => mutability = *m,
                    AnnArg::Ty(t) => targs.push(self.go(t, tparams, tsubst, depth + 1)?),
                    AnnArg::Term(_) => {
                        return Err(ResolveError(format!(
                            "object type {n} takes no term arguments"
                        )))
                    }
                }
            }
            let _ = o;
            return Ok(RType::trivial(Base::Obj(n.clone(), mutability, targs)));
        }
        Err(ResolveError(format!("unknown type `{n}`")))
    }

    fn expand_alias(
        &self,
        alias: &TypeAlias,
        args: &[AnnArg],
        tparams: &HashSet<Sym>,
        tsubst: &HashMap<Sym, RType>,
        depth: usize,
    ) -> Result<RType, ResolveError> {
        if args.len() != alias.params.len() {
            return Err(ResolveError(format!(
                "alias {} expects {} arguments, got {}",
                alias.name,
                alias.params.len(),
                args.len()
            )));
        }
        let mut new_tsubst = tsubst.clone();
        let mut term_subst = Subst::new();
        for (p, a) in alias.params.iter().zip(args) {
            let used_as_type = ann_uses_as_type(&alias.body, p);
            match (used_as_type, a) {
                (true, AnnArg::Ty(t)) => {
                    new_tsubst.insert(p.clone(), self.go(t, tparams, tsubst, depth + 1)?);
                }
                (false, AnnArg::Term(t)) => term_subst.push(p.clone(), t.clone()),
                (false, AnnArg::Ty(AnnTy::Name(x, xs))) if xs.is_empty() => {
                    // A bare identifier parsed as a type but used as a term.
                    term_subst.push(p.clone(), Term::var(x.clone()));
                }
                _ => {
                    return Err(ResolveError(format!(
                        "argument for parameter {p} of alias {} has the wrong kind",
                        alias.name
                    )))
                }
            }
        }
        let body = self.go(&alias.body, tparams, &new_tsubst, depth + 1)?;
        Ok(body.subst(&term_subst))
    }
}

/// True if the alias body uses parameter `p` in a type position.
fn ann_uses_as_type(t: &AnnTy, p: &Sym) -> bool {
    match t {
        AnnTy::Name(n, args) => {
            n == p
                || args.iter().any(|a| match a {
                    AnnArg::Ty(t) => ann_uses_as_type(t, p),
                    _ => false,
                })
        }
        AnnTy::Refined { base, .. } => ann_uses_as_type(base, p),
        AnnTy::Array { elem, .. } => ann_uses_as_type(elem, p),
        AnnTy::Union(ps) => ps.iter().any(|t| ann_uses_as_type(t, p)),
        AnnTy::Arrow(ft) => {
            ft.params.iter().any(|(_, t)| ann_uses_as_type(t, p)) || ann_uses_as_type(&ft.ret, p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_syntax::ast::Item;

    fn table_of(src: &str) -> ClassTable {
        let p = rsc_syntax::parse_program(src).unwrap();
        let mut aliases = Vec::new();
        let mut enums = Vec::new();
        let mut classes = Vec::new();
        let mut ifaces = Vec::new();
        for i in p.items {
            match i {
                Item::TypeAlias(a) => aliases.push(a),
                Item::Enum(e) => enums.push(e),
                Item::Class(c) => classes.push(c),
                Item::Interface(i) => ifaces.push(i),
                _ => {}
            }
        }
        ClassTable::build(&aliases, &enums, &ifaces, &classes).unwrap()
    }

    const PRELUDE: &str = r#"
        type nat = {v: number | 0 <= v};
        type pos = {v: number | 0 < v};
        type idx<a> = {v: nat | v < len(a)};
    "#;

    #[test]
    fn alias_expansion_idx() {
        let ct = table_of(PRELUDE);
        let t = ct
            .resolve(&rsc_syntax::parse_type("idx<arr>").unwrap())
            .unwrap();
        assert_eq!(t.to_string(), "{v: number | (0 <= v && v < len(arr))}");
    }

    #[test]
    fn dependent_alias_with_terms() {
        let ct = table_of(
            r#"
            type ArrayN<T, n> = {v: T[] | len(v) = n};
            type grid<w, h> = ArrayN<number, (w + 2) * (h + 2)>;
        "#,
        );
        let t = ct
            .resolve(&rsc_syntax::parse_type("grid<this.w, this.h>").unwrap())
            .unwrap();
        let s = t.to_string();
        assert!(s.contains("len(v) = ((this.w + 2) * (this.h + 2))"), "{s}");
    }

    #[test]
    fn hierarchy_and_inv() {
        let ct = table_of(
            r#"
            interface Type { immutable flags : number; }
            interface ObjectType extends Type { }
            interface InterfaceType extends ObjectType { }
        "#,
        );
        assert!(ct.is_subclass(&Sym::from("InterfaceType"), &Sym::from("Type")));
        assert!(!ct.is_subclass(&Sym::from("Type"), &Sym::from("ObjectType")));
        let p = ct.inv_pred(&Sym::from("InterfaceType"), &Term::var("t"));
        let s = p.to_string();
        assert!(s.contains("impl(t, \"InterfaceType\")"));
        assert!(s.contains("impl(t, \"Type\")"));
    }

    #[test]
    fn field_lookup_through_hierarchy() {
        let ct = table_of(
            r#"
            interface Type { immutable flags : number; }
            interface ObjectType extends Type { }
        "#,
        );
        let fi = ct
            .lookup_field(&Sym::from("ObjectType"), &Sym::from("flags"))
            .unwrap();
        assert!(fi.imm);
    }

    #[test]
    fn enum_is_bitvector() {
        let ct = table_of("enum F { A = 0x1, B = 0x2, }");
        let t = ct.resolve(&rsc_syntax::parse_type("F").unwrap()).unwrap();
        assert!(matches!(t.base, Base::Bv(_)));
        assert_eq!(t.sort(), Sort::Bv32);
    }

    #[test]
    fn unknown_type_is_error() {
        let ct = table_of("");
        assert!(ct
            .resolve(&rsc_syntax::parse_type("Mystery").unwrap())
            .is_err());
    }

    #[test]
    fn class_invariant_field_refinements() {
        let ct = table_of(
            r#"
            type pos = {v: number | 0 < v};
            class Field {
                immutable w : pos;
                immutable h : pos;
                dens : number[];
            }
        "#,
        );
        let p = ct.inv_pred(&Sym::from("Field"), &Term::var("z"));
        let s = p.to_string();
        assert!(s.contains("0 < z.w"), "{s}");
        assert!(s.contains("0 < z.h"), "{s}");
        assert!(!s.contains("dens"), "mutable fields must not appear: {s}");
    }
}
