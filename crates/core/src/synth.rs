//! Expression synthesis and body checking: the implementation of the
//! typing rules of Figure 5 (T-VAR, T-FIELD-I/M, T-INV, T-NEW, T-CAST,
//! T-ASGN, T-LETIF plus the loop rule), two-phase overload checking
//! (§2.1.2), constructor cooking (§4.4) and context-sensitive checking of
//! unannotated closures against instantiated templates (§2.2.1).

use std::collections::HashMap;
use std::rc::Rc;

use rsc_liquid::{Blame, ObligationKind as K};
use rsc_logic::{CmpOp, Pred, Sort, Subst, Sym, Term};
use rsc_ssa::{Body, IrClass, IrExpr, IrFun};
use rsc_syntax::ast::{BinOpE, UnOp};
use rsc_syntax::{Mutability, Span};

use crate::checker::{Checker, Env};
use crate::diag::Diagnostic;
use crate::rtype::{Base, Prim, RFun, RType};

impl Checker {
    // ------------------------------------------------------------ functions ---

    /// Checks a function declaration: each signature of the intersection
    /// is checked separately (two-phase typing) with `arguments` bound to
    /// an array of exactly that conjunct's arity.
    pub(crate) fn check_fun(&mut self, f: &IrFun, base_env: &Env) {
        for sig in f.sigs.clone() {
            let mut tp = base_env.tparams.clone();
            tp.extend(sig.tparams.iter().cloned());
            let rf = match self.ct.resolve_funty(&sig, &tp) {
                Ok(r) => r,
                Err(e) => {
                    self.diags.push(Diagnostic::error(
                        format!("in function {}: {}", f.name, e.0),
                        f.span,
                    ));
                    continue;
                }
            };
            let mut env = base_env.clone();
            env.tparams = tp;
            env.in_ctor_of = None;
            // Rename signature parameter names to the function's parameter
            // names so dependent refinements line up.
            let mut rename = Subst::new();
            for (i, (sx, _)) in rf.params.iter().enumerate() {
                if let Some(px) = f.params.get(i) {
                    if sx != px {
                        rename.push(sx.clone(), Term::var(px.clone()));
                    }
                }
            }
            for (i, px) in f.params.iter().enumerate() {
                let ty = match rf.params.get(i) {
                    Some((_, t)) => t.subst(&rename),
                    // Parameters beyond this conjunct's arity are
                    // `undefined` in this overload.
                    None => RType::undefined(),
                };
                env.bind(px.clone(), ty);
            }
            // `arguments` for value-based overloading (§2.1.2).
            let arity = rf.params.len().min(f.params.len());
            env.bind(
                "arguments",
                RType {
                    base: Base::Arr(Box::new(RType::undefined()), Mutability::ReadOnly),
                    pred: Pred::eq(Term::len_of(Term::vv()), Term::int(arity as i64)),
                },
            );
            env.ret = rf.ret.subst(&rename);
            env.ret_span = f.span;
            self.check_body(&f.body, &mut env);
        }
    }

    /// Checks an unannotated nested function against an expected arrow
    /// type at a call site — the closure-template checking of §2.2.1.
    pub(crate) fn check_deferred_against(&mut self, name: &Sym, expected: &RFun, span: Span) {
        let Some((fun, cap_env)) = self.deferred.get(name).cloned() else {
            self.diags.push(Diagnostic::error(
                format!("internal: deferred function {name} not found"),
                span,
            ));
            return;
        };
        let mut env = cap_env;
        let mut rename = Subst::new();
        for (i, (ex, _)) in expected.params.iter().enumerate() {
            if let Some(px) = fun.params.get(i) {
                if ex != px {
                    rename.push(ex.clone(), Term::var(px.clone()));
                }
            }
        }
        for (i, px) in fun.params.iter().enumerate() {
            let ty = match expected.params.get(i) {
                Some((_, t)) => t.subst(&rename),
                None => RType::undefined(),
            };
            env.bind(px.clone(), ty);
        }
        env.ret = expected.ret.subst(&rename);
        env.ret_span = span;
        env.in_ctor_of = None;
        self.check_body(&fun.body.clone(), &mut env);
    }

    /// Checks a class: constructor (cooking mode) and every method (with
    /// `this` at the method's receiver mutability).
    pub(crate) fn check_class(&mut self, c: &IrClass) {
        let cname = c.decl.name.clone();
        let tp: std::collections::HashSet<Sym> = c.decl.tparams.iter().cloned().collect();
        if let Some(ctor) = &c.ctor {
            // Each constructor and method is its own parallel-solve unit.
            self.begin_unit();
            let mut env = Env::new();
            env.tparams = tp.clone();
            env.in_ctor_of = Some(cname.clone());
            if let Some(info) = self.ct.objs.get(&cname) {
                if let Some(params) = info.ctor_params.clone() {
                    for (x, t) in params {
                        env.bind(x, t);
                    }
                }
            }
            env.ret = RType::void();
            self.check_body(&ctor.body, &mut env);
            // A constructor body that falls off the end is an implicit
            // return: check_body emits the exit check at Ret nodes; the SSA
            // translation always ends bodies with Ret.
        }
        for m in &c.methods {
            let Some(body) = &m.body else { continue };
            let mi = match self.ct.lookup_method(&cname, &m.name) {
                Some(mi) => mi.clone(),
                None => continue,
            };
            self.begin_unit();
            let mut env = Env::new();
            env.tparams = tp.clone();
            let targs: Vec<RType> = c
                .decl
                .tparams
                .iter()
                .map(|a| RType::trivial(Base::TVar(a.clone())))
                .collect();
            env.bind(
                "this",
                RType::trivial(Base::Obj(cname.clone(), mi.recv, targs)),
            );
            for (x, t) in &mi.fun.params {
                env.bind(x.clone(), t.clone());
            }
            env.ret = mi.fun.ret.clone();
            env.ret_span = m.span;
            self.check_body(body, &mut env);
        }
    }

    // ------------------------------------------------------------- bodies ---

    pub(crate) fn check_body(&mut self, b: &Body, env: &mut Env) {
        match b {
            Body::Ret(val, span) => {
                if let Some(cname) = env.in_ctor_of.clone() {
                    self.ctor_exit(env, &cname, *span);
                    return;
                }
                let t = match val {
                    Some(e) => self.synth(e, env),
                    None => RType::undefined(),
                };
                if !matches!(env.ret.base, Base::Prim(Prim::Void)) {
                    let ret = env.ret.clone();
                    let mut blame = Blame::new(K::Return, "", *span);
                    if !env.ret_span.is_dummy() {
                        blame = blame.with_related(env.ret_span, "declared return type here");
                    }
                    self.sub(env, &t, &ret, &blame);
                }
            }
            Body::EndBranch(_) => {}
            Body::Let {
                x,
                ann,
                rhs,
                rest,
                span,
            } => {
                let t = self.synth(rhs, env);
                let bound = match ann {
                    Some(a) => match self.ct.resolve_in(a, &env.tparams) {
                        Ok(ta) => {
                            let blame =
                                Blame::new(K::Assignment, format!("initializer of {x}"), *span);
                            self.sub(env, &t, &ta, &blame);
                            ta
                        }
                        Err(e) => {
                            self.diags.push(Diagnostic::error(e.0, *span));
                            t
                        }
                    },
                    None => t,
                };
                env.bind(x.clone(), bound);
                self.check_body(rest, env);
            }
            Body::Effect { e, rest, .. } => {
                self.synth(e, env);
                self.check_body(rest, env);
            }
            Body::LetFun { fun, rest, .. } => {
                if fun.sigs.is_empty() {
                    self.deferred
                        .insert(fun.name.clone(), ((**fun).clone(), env.clone()));
                } else {
                    let tp = env.tparams.clone();
                    if let Ok(rf) = self.ct.resolve_funty(&fun.sigs[0], &tp) {
                        env.bind(fun.name.clone(), RType::trivial(Base::Fun(Rc::new(rf))));
                    }
                    self.check_fun(fun, &env.clone());
                }
                self.check_body(rest, env);
            }
            Body::If {
                cond,
                phis,
                then_br,
                else_br,
                then_falls,
                else_falls,
                rest,
                span,
            } => {
                self.synth(cond, env);
                let (gp, gn) = if self.opts.path_sensitivity {
                    (self.guard_pos(cond, env), self.guard_neg(cond, env))
                } else {
                    (Pred::True, Pred::True)
                };
                let mut env1 = env.clone();
                env1.guard(gp);
                self.check_body(then_br, &mut env1);
                let mut env2 = env.clone();
                env2.guard(gn);
                self.check_body(else_br, &mut env2);
                for phi in phis {
                    let t_then = phi
                        .then_src
                        .as_ref()
                        .and_then(|s| env1.lookup(s).cloned().map(|t| (s.clone(), t)));
                    let t_else = phi
                        .else_src
                        .as_ref()
                        .and_then(|s| env2.lookup(s).cloned().map(|t| (s.clone(), t)));
                    let template = self.phi_template(
                        env,
                        t_then.as_ref().map(|(_, t)| t),
                        t_else.as_ref().map(|(_, t)| t),
                        &format!("phi {}", phi.source),
                    );
                    if *then_falls {
                        if let Some((s, t)) = &t_then {
                            let lhs = t.clone().selfify(Term::var(s.clone()));
                            let blame = Blame::new(K::Assignment, "phi join (then)", *span);
                            self.sub(&env1, &lhs, &template, &blame);
                        }
                    }
                    if *else_falls {
                        if let Some((s, t)) = &t_else {
                            let lhs = t.clone().selfify(Term::var(s.clone()));
                            let blame = Blame::new(K::Assignment, "phi join (else)", *span);
                            self.sub(&env2, &lhs, &template, &blame);
                        }
                    }
                    env.bind(phi.new.clone(), template);
                }
                // The continuation inherits the guard of whichever branch
                // falls through (e.g. after `if (c) return;`, ¬c holds).
                match (then_falls, else_falls) {
                    (true, false) => {
                        let g = self.guard_pos(cond, env);
                        env.guard(g);
                    }
                    (false, true) => {
                        let g = self.guard_neg(cond, env);
                        env.guard(g);
                    }
                    (false, false) => env.guard(Pred::False), // dead code
                    (true, true) => {}
                }
                self.check_body(rest, env);
            }
            Body::Loop {
                phis,
                cond,
                body,
                rest,
                span,
            } => {
                // Templates for the loop-head Φ variables: the inferred
                // loop invariants (§2.2.2).
                let mut templates: Vec<(Sym, RType)> = Vec::new();
                let mut scope: Vec<(Sym, Sort)> = env
                    .binds
                    .iter()
                    .map(|(x, t)| (x.clone(), t.sort()))
                    .collect();
                let mut inits = Vec::new();
                for phi in phis {
                    let ti = env
                        .lookup(&phi.init_src)
                        .cloned()
                        .unwrap_or_else(RType::undefined);
                    let ti = self.resolve_infer(&ti);
                    scope.push((phi.new.clone(), ti.sort()));
                    inits.push(ti);
                }
                for (phi, ti) in phis.iter().zip(&inits) {
                    let k = self.cs.fresh_kvar(
                        ti.sort(),
                        scope.clone(),
                        format!("loop invariant for {}", phi.source),
                    );
                    let template = RType {
                        base: ti.base.clone(),
                        pred: Pred::KVar(k, Subst::new()),
                    };
                    templates.push((phi.new.clone(), template));
                }
                // Entry: init values flow into the invariants.
                for ((phi, ti), (_, template)) in phis.iter().zip(&inits).zip(&templates) {
                    let lhs = ti.clone().selfify(Term::var(phi.init_src.clone()));
                    let t = template.clone();
                    let blame = Blame::new(
                        K::LoopInvariant,
                        format!("loop entry for {}", phi.source),
                        *span,
                    );
                    self.sub(env, &lhs, &t, &blame);
                }
                let mut env_loop = env.clone();
                for (x, t) in &templates {
                    env_loop.bind(x.clone(), t.clone());
                }
                self.synth(cond, &mut env_loop);
                let (gp, gn) = if self.opts.path_sensitivity {
                    (
                        self.guard_pos(cond, &env_loop),
                        self.guard_neg(cond, &env_loop),
                    )
                } else {
                    (Pred::True, Pred::True)
                };
                let mut env_body = env_loop.clone();
                env_body.guard(gp);
                self.check_body(body, &mut env_body);
                // Back edge: body values flow into the invariants.
                for (phi, (_, template)) in phis.iter().zip(&templates) {
                    if let Some(src) = &phi.body_src {
                        if let Some(t) = env_body.lookup(src).cloned() {
                            let lhs = t.selfify(Term::var(src.clone()));
                            let tpl = template.clone();
                            let blame = Blame::new(
                                K::LoopInvariant,
                                format!("loop back edge for {}", phi.source),
                                *span,
                            );
                            self.sub(&env_body, &lhs, &tpl, &blame);
                        }
                    }
                }
                for (x, t) in templates {
                    env.bind(x, t);
                }
                env.guard(gn);
                self.check_body(rest, env);
            }
        }
    }

    fn phi_template(
        &mut self,
        env: &Env,
        t1: Option<&RType>,
        t2: Option<&RType>,
        origin: &str,
    ) -> RType {
        let b = match (t1, t2) {
            (Some(a), Some(b)) => self.join_base(&self.resolve_infer(a), &self.resolve_infer(b)),
            (Some(a), None) => self.resolve_infer(a).base,
            (None, Some(b)) => self.resolve_infer(b).base,
            (None, None) => Base::Union(vec![]),
        };
        let t = RType::trivial(b);
        let scope: Vec<(Sym, Sort)> = env
            .binds
            .iter()
            .map(|(x, ty)| (x.clone(), ty.sort()))
            .collect();
        let k = self.cs.fresh_kvar(t.sort(), scope, origin.to_string());
        RType {
            base: t.base,
            pred: Pred::KVar(k, Subst::new()),
        }
    }

    pub(crate) fn join_base(&self, a: &RType, b: &RType) -> Base {
        match (&a.base, &b.base) {
            (Base::Obj(c1, m, x), Base::Obj(c2, _, _)) => {
                if self.ct.is_subclass(c1, c2) {
                    Base::Obj(c2.clone(), *m, x.clone())
                } else if self.ct.is_subclass(c2, c1) {
                    Base::Obj(c1.clone(), *m, x.clone())
                } else {
                    Base::Union(vec![
                        RType::trivial(a.base.clone()),
                        RType::trivial(b.base.clone()),
                    ])
                }
            }
            (Base::Infer(_), _) => b.base.clone(),
            (_, Base::Infer(_)) => a.base.clone(),
            (x, y) if self.base_compat(x, y) => a.base.clone(),
            _ => {
                let mut parts: Vec<RType> = Vec::new();
                let add = |t: &RType, parts: &mut Vec<RType>, me: &Checker| match &t.base {
                    Base::Union(ps) => {
                        for p in ps {
                            if !parts.iter().any(|q| me.base_compat(&q.base, &p.base)) {
                                parts.push(RType::trivial(p.base.clone()));
                            }
                        }
                    }
                    other => {
                        if !parts.iter().any(|q| me.base_compat(&q.base, other)) {
                            parts.push(RType::trivial(other.clone()));
                        }
                    }
                };
                add(a, &mut parts, self);
                add(b, &mut parts, self);
                if parts.len() == 1 {
                    parts.pop().unwrap().base
                } else {
                    Base::Union(parts)
                }
            }
        }
    }

    // ------------------------------------------------------------ synthesis ---

    /// Synthesizes the type of an expression, emitting obligations.
    pub(crate) fn synth(&mut self, e: &IrExpr, env: &mut Env) -> RType {
        match e {
            IrExpr::Num(n, _) => RType::num_lit(*n),
            IrExpr::Bv(n, _) => RType {
                base: Base::Bv(Sym::from("bitvector32")),
                pred: Pred::vv_eq(Term::bv(*n)),
            },
            IrExpr::Str(s, _) => RType {
                base: Base::Prim(Prim::Str),
                pred: Pred::vv_eq(Term::str(s.clone())),
            },
            IrExpr::Bool(b, _) => RType {
                base: Base::Prim(Prim::Bool),
                pred: Pred::vv_eq(Term::bool(*b)),
            },
            IrExpr::Null(_) => RType::null(),
            IrExpr::Undefined(_) => RType::undefined(),
            IrExpr::This(span) => {
                if env.in_ctor_of.is_some() {
                    self.diags.push(Diagnostic::error(
                        "`this` may not be read inside a constructor (the object is still cooking, §4.4)",
                        *span,
                    ));
                    return RType::undefined();
                }
                match env.lookup(&Sym::from("this")) {
                    Some(t) => t.clone().selfify(Term::this()),
                    None => {
                        self.diags
                            .push(Diagnostic::error("`this` used outside a class", *span));
                        RType::undefined()
                    }
                }
            }
            IrExpr::Var(x, span) => {
                if let Some(t) = env.lookup(x) {
                    return t.clone().selfify(Term::var(x.clone()));
                }
                if let Some(t) = self.declares.get(x) {
                    return t.clone();
                }
                if let Some(f) = self.funs.get(x).cloned() {
                    if let Some(sig0) = f.sigs.first() {
                        if let Ok(rf) = self
                            .ct
                            .resolve_funty(sig0, &sig0.tparams.iter().cloned().collect())
                        {
                            return RType::trivial(Base::Fun(Rc::new(rf)));
                        }
                    }
                }
                if self.deferred.contains_key(x) {
                    // Only usable as a call argument; give it an opaque type.
                    return RType::trivial(Base::Fun(Rc::new(RFun {
                        tparams: vec![],
                        params: vec![],
                        ret: RType::void(),
                    })));
                }
                self.diags
                    .push(Diagnostic::error(format!("unbound variable {x}"), *span));
                RType::trivial(Base::Union(vec![]))
            }
            IrExpr::Field(b, f, span) => self.synth_field(b, f, *span, env),
            IrExpr::Index(a, i, span) => {
                let (elem, _m, arr_term) = self.expect_array(a, *span, env, false);
                let ti = self.synth(i, env);
                let idx_ty = self.idx_type(&arr_term);
                let blame = Blame::new(K::ArrayBounds, "array read index", *span);
                self.sub(env, &ti, &idx_ty, &blame);
                elem
            }
            IrExpr::IndexAssign(a, i, v, span) => {
                let (elem, m, arr_term) = self.expect_array(a, *span, env, true);
                if !matches!(m, Mutability::Mutable | Mutability::Unique) {
                    self.base_error(
                        env,
                        *span,
                        format!("array write requires a mutable array (got {})", m.abbrev()),
                    );
                }
                let ti = self.synth(i, env);
                let idx_ty = self.idx_type(&arr_term);
                let blame = Blame::new(K::ArrayBounds, "array write index", *span);
                self.sub(env, &ti, &idx_ty, &blame);
                let tv = self.synth(v, env);
                let blame = Blame::new(K::Assignment, "array write value", *span);
                self.sub(env, &tv, &elem, &blame);
                tv
            }
            IrExpr::FieldAssign(recv, f, val, span) => {
                self.synth_field_assign(recv, f, val, *span, env)
            }
            IrExpr::Call(callee, args, span) => self.synth_call(callee, args, *span, env),
            IrExpr::New(cname, targs, args, span) => self.synth_new(cname, targs, args, *span, env),
            IrExpr::Cast(ann, inner, span) => self.synth_cast(ann, inner, *span, env),
            IrExpr::Unary(op, x, span) => match op {
                UnOp::TypeOf => {
                    let _ = self.synth(x, env);
                    match self.term_of(x, env) {
                        Some(t) => RType {
                            base: Base::Prim(Prim::Str),
                            pred: Pred::vv_eq(Term::ttag_of(t)),
                        },
                        None => RType::string(),
                    }
                }
                UnOp::Neg => {
                    let t = self.synth(x, env);
                    let blame = Blame::new(K::BaseType, "negation operand", *span);
                    self.sub(env, &t, &RType::number(), &blame);
                    match self.term_of(x, env) {
                        Some(tx) => RType {
                            base: Base::Prim(Prim::Num),
                            pred: Pred::vv_eq(Term::neg(tx)),
                        },
                        None => RType::number(),
                    }
                }
                UnOp::Not => {
                    let _ = self.synth(x, env);
                    self.bool_result(e, env)
                }
            },
            IrExpr::Binary(op, a, b, span) => {
                let ta = self.synth(a, env);
                let tb = self.synth(b, env);
                match op {
                    BinOpE::Add | BinOpE::Sub | BinOpE::Mul | BinOpE::Div | BinOpE::Mod => {
                        let blame = Blame::new(K::BaseType, "arithmetic operand", *span);
                        self.sub(env, &ta, &RType::number(), &blame);
                        self.sub(env, &tb, &RType::number(), &blame);
                        if matches!(op, BinOpE::Div | BinOpE::Mod) {
                            if let Some(tb_term) = self.term_of(b, env) {
                                let lhs = self.embed_pred(&tb);
                                let lhs = Pred::and(vec![lhs, Pred::vv_eq(tb_term)]);
                                let blame =
                                    Blame::new(K::Arithmetic, "divisor must be nonzero", *span);
                                self.push_sub_pred(
                                    env,
                                    lhs,
                                    Pred::cmp(CmpOp::Ne, Term::vv(), Term::int(0)),
                                    Sort::Int,
                                    &blame,
                                );
                            }
                        }
                        let term_a = self.term_of_or_tmp(a, &ta, env);
                        let term_b = self.term_of_or_tmp(b, &tb, env);
                        let bop = match op {
                            BinOpE::Add => rsc_logic::BinOp::Add,
                            BinOpE::Sub => rsc_logic::BinOp::Sub,
                            BinOpE::Mul => rsc_logic::BinOp::Mul,
                            BinOpE::Div => rsc_logic::BinOp::Div,
                            _ => rsc_logic::BinOp::Mod,
                        };
                        RType {
                            base: Base::Prim(Prim::Num),
                            pred: Pred::vv_eq(Term::bin(bop, term_a, term_b)),
                        }
                    }
                    BinOpE::Lt | BinOpE::Le | BinOpE::Gt | BinOpE::Ge => {
                        let blame = Blame::new(K::BaseType, "comparison operand", *span);
                        self.sub(env, &ta, &RType::number(), &blame);
                        self.sub(env, &tb, &RType::number(), &blame);
                        self.bool_result(e, env)
                    }
                    BinOpE::Eq | BinOpE::Ne => self.bool_result(e, env),
                    BinOpE::And | BinOpE::Or => self.bool_result(e, env),
                    BinOpE::BitAnd | BinOpE::BitOr => {
                        let bvty = RType::trivial(Base::Bv(Sym::from("bitvector32")));
                        let blame = Blame::new(K::BaseType, "bit-vector operand", *span);
                        if !matches!(ta.base, Base::Bv(_)) && !matches!(a.as_ref(), IrExpr::Num(..))
                        {
                            self.sub(env, &ta, &bvty, &blame);
                        }
                        if !matches!(tb.base, Base::Bv(_)) && !matches!(b.as_ref(), IrExpr::Num(..))
                        {
                            self.sub(env, &tb, &bvty, &blame);
                        }
                        match self.term_of(e, env) {
                            Some(t) => RType {
                                base: Base::Bv(Sym::from("bitvector32")),
                                pred: Pred::vv_eq(t),
                            },
                            None => bvty,
                        }
                    }
                }
            }
            IrExpr::ArrayLit(elems, span) => {
                let tys: Vec<RType> = elems.iter().map(|x| self.synth(x, env)).collect();
                let elem = if let Some(first) = tys.first() {
                    let scope: Vec<(Sym, Sort)> = env
                        .binds
                        .iter()
                        .map(|(x, t)| (x.clone(), t.sort()))
                        .collect();
                    let k = self
                        .cs
                        .fresh_kvar(first.sort(), scope, "array literal element");
                    let template = RType {
                        base: first.base.clone(),
                        pred: Pred::KVar(k, Subst::new()),
                    };
                    let blame = Blame::new(K::Assignment, "array literal element", *span);
                    for t in &tys {
                        self.sub(env, t, &template, &blame);
                    }
                    template
                } else {
                    let u = self.next_infer;
                    self.next_infer += 1;
                    RType::trivial(Base::Infer(u))
                };
                RType {
                    base: Base::Arr(Box::new(elem), Mutability::Mutable),
                    pred: Pred::eq(Term::len_of(Term::vv()), Term::int(elems.len() as i64)),
                }
            }
        }
    }

    /// Boolean results carry their truth conditions in both directions:
    /// `(v ⇒ p⁺) ∧ (¬v ⇒ p⁻)` where `p⁺`/`p⁻` are the guard predicates.
    fn bool_result(&mut self, e: &IrExpr, env: &Env) -> RType {
        let gp = self.guard_pos(e, env);
        let gn = self.guard_neg(e, env);
        RType {
            base: Base::Prim(Prim::Bool),
            pred: Pred::and(vec![
                Pred::imp(Pred::TermPred(Term::vv()), gp),
                Pred::imp(Pred::not(Pred::TermPred(Term::vv())), gn),
            ]),
        }
    }

    fn idx_type(&self, arr_term: &Term) -> RType {
        RType {
            base: Base::Prim(Prim::Num),
            pred: Pred::and(vec![
                Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
                Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(arr_term.clone())),
            ]),
        }
    }

    /// A term denoting `e`, binding a fresh temporary when no syntactic
    /// term exists (existential unpacking).
    fn term_of_or_tmp(&mut self, e: &IrExpr, ty: &RType, env: &mut Env) -> Term {
        if let Some(t) = self.term_of(e, env) {
            return t;
        }
        let tmp = self.fresh_tmp();
        env.bind(tmp.clone(), ty.clone());
        Term::var(tmp)
    }

    /// Coerces the receiver expression to an array, narrowing unions and
    /// emitting the non-null obligation. Returns (element type,
    /// mutability, a term denoting the array).
    fn expect_array(
        &mut self,
        a: &IrExpr,
        span: Span,
        env: &mut Env,
        _for_write: bool,
    ) -> (RType, Mutability, Term) {
        let ta = self.synth(a, env);
        let ta = self.resolve_infer(&ta);
        let term = self.term_of_or_tmp(a, &ta, env);
        match &ta.base {
            Base::Arr(elem, m) => ((**elem).clone(), *m, term),
            Base::Union(parts) => {
                if let Some(p) = parts.iter().find(|p| matches!(p.base, Base::Arr(..))) {
                    let tgt = p.clone();
                    let lhs = ta.clone().selfify(term.clone());
                    let blame = Blame::new(K::Narrowing, "indexing a possibly-null value", span);
                    self.sub(env, &lhs, &tgt, &blame);
                    if let Base::Arr(elem, m) = &tgt.base {
                        return ((**elem).clone(), *m, term);
                    }
                }
                self.base_error(
                    env,
                    span,
                    format!("indexing non-array {}", ta.base.describe()),
                );
                (RType::undefined(), Mutability::ReadOnly, term)
            }
            Base::Prim(Prim::Str) => {
                // Strings are read-only character collections.
                (RType::string(), Mutability::ReadOnly, term)
            }
            other => {
                self.base_error(
                    env,
                    span,
                    format!("indexing non-array {}", other.describe()),
                );
                (RType::undefined(), Mutability::ReadOnly, term)
            }
        }
    }

    // ------------------------------------------------------------- fields ---

    fn synth_field(&mut self, b: &IrExpr, f: &Sym, span: Span, env: &mut Env) -> RType {
        // Enum member access.
        if let IrExpr::Var(n, _) = b {
            if env.lookup(n).is_none() {
                if let Some(members) = self.ct.enums.get(n) {
                    return match members.get(f) {
                        Some(v) => RType {
                            base: Base::Bv(n.clone()),
                            pred: Pred::vv_eq(Term::bv(*v)),
                        },
                        None => {
                            self.diags.push(Diagnostic::error(
                                format!("enum {n} has no member {f}"),
                                span,
                            ));
                            RType::undefined()
                        }
                    };
                }
            }
        }
        let tb = self.synth(b, env);
        let tb = self.resolve_infer(&tb);
        let recv = self.term_of_or_tmp(b, &tb, env);
        self.field_of(&tb, f, recv, span, env)
    }

    fn field_of(&mut self, tb: &RType, f: &Sym, recv: Term, span: Span, env: &mut Env) -> RType {
        match &tb.base {
            Base::Arr(..) if f.as_str() == "length" => RType {
                base: Base::Prim(Prim::Num),
                pred: Pred::and(vec![
                    Pred::vv_eq(Term::len_of(recv)),
                    Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
                ]),
            },
            Base::Obj(c, _, targs) => {
                let Some(fi) = self.ct.lookup_field(c, f).cloned() else {
                    self.base_error(env, span, format!("{c} has no field {f}"));
                    return RType::undefined();
                };
                // Substitute class type parameters and the receiver.
                let mut ty = fi.ty.clone();
                if let Some(info) = self.ct.objs.get(c) {
                    let map: HashMap<Sym, RType> = info
                        .tparams
                        .iter()
                        .cloned()
                        .zip(targs.iter().cloned())
                        .collect();
                    if !map.is_empty() {
                        ty = apply_tvars(&ty, &map);
                    }
                }
                let ty = ty.subst(&Subst::one("this", recv.clone()));
                if fi.imm {
                    // T-FIELD-I: immutable parts are selfified.
                    ty.selfify(Term::field(recv, f.clone()))
                } else {
                    // T-FIELD-M: ∃z:T — unpack the existential by binding a
                    // fresh witness (no strengthening via the field itself).
                    let z = self.fresh_tmp();
                    env.bind(z.clone(), ty.clone());
                    ty.selfify(Term::var(z))
                }
            }
            Base::Union(parts) => {
                if let Some(p) = parts
                    .iter()
                    .find(|p| matches!(p.base, Base::Obj(..) | Base::Arr(..)))
                    .cloned()
                {
                    let lhs = tb.clone().selfify(recv.clone());
                    let blame = Blame::new(
                        K::FieldRead,
                        format!("property access .{f} on a possibly null/undefined value"),
                        span,
                    );
                    self.sub(env, &lhs, &p, &blame);
                    self.field_of(&p, f, recv, span, env)
                } else {
                    self.base_error(
                        env,
                        span,
                        format!("property .{f} on {}", tb.base.describe()),
                    );
                    RType::undefined()
                }
            }
            Base::Prim(Prim::Str) if f.as_str() == "length" => RType {
                base: Base::Prim(Prim::Num),
                pred: Pred::and(vec![
                    Pred::vv_eq(Term::len_of(recv)),
                    Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
                ]),
            },
            other => {
                self.base_error(env, span, format!("property .{f} on {}", other.describe()));
                RType::undefined()
            }
        }
    }

    fn synth_field_assign(
        &mut self,
        recv: &IrExpr,
        f: &Sym,
        val: &IrExpr,
        span: Span,
        env: &mut Env,
    ) -> RType {
        // Constructor cooking: `this.f = e` records a pseudo-local
        // (ctor_init is checked at the exits, §4.4).
        if env.in_ctor_of.is_some() && matches!(recv, IrExpr::This(_)) {
            let tv = self.synth(val, env);
            let term = self.term_of_or_tmp(val, &tv, env);
            let bound = tv.selfify(term);
            env.bind(Sym::from(format!("$field${f}")), bound.clone());
            return bound;
        }
        let tr = self.synth(recv, env);
        let tr = self.resolve_infer(&tr);
        let recv_term = self.term_of_or_tmp(recv, &tr, env);
        match &tr.base {
            Base::Obj(c, m, _) => {
                let Some(fi) = self.ct.lookup_field(c, f).cloned() else {
                    self.base_error(env, span, format!("{c} has no field {f}"));
                    return RType::undefined();
                };
                if fi.imm && *m != Mutability::Unique {
                    self.base_error(
                        env,
                        span,
                        format!("cannot assign immutable field {f} outside the constructor"),
                    );
                }
                if !matches!(m, Mutability::Mutable | Mutability::Unique) {
                    self.base_error(
                        env,
                        span,
                        format!(
                            "field write .{f} requires a mutable receiver (got {})",
                            m.abbrev()
                        ),
                    );
                }
                let tv = self.synth(val, env);
                let expected = fi.ty.subst(&Subst::one("this", recv_term));
                let blame = Blame::new(K::FieldWrite, format!("assignment to field {f}"), span);
                self.sub(env, &tv, &expected, &blame);
                tv
            }
            other => {
                let _ = self.synth(val, env);
                self.base_error(env, span, format!("field write on {}", other.describe()));
                RType::undefined()
            }
        }
    }

    /// Constructor exit: `ctor_init(f̄)` — every field must be initialized
    /// and satisfy its declared refinement, with `this.g` rewritten to the
    /// recorded field values (atomic establishment of class invariants).
    fn ctor_exit(&mut self, env: &mut Env, cname: &Sym, span: Span) {
        let fields = self.ct.all_fields(cname);
        for fi in &fields {
            let pseudo = Sym::from(format!("$field${}", fi.name));
            if env.lookup(&pseudo).is_none() {
                self.diags.push(Diagnostic::error(
                    format!(
                        "constructor of {cname} does not initialize field {}",
                        fi.name
                    ),
                    span,
                ));
                continue;
            }
            let target = RType {
                base: fi.ty.base.clone(),
                pred: rewrite_this_fields(&fi.ty.pred),
            };
            let lhs = env.lookup(&pseudo).unwrap().clone();
            let lhs = lhs.selfify(Term::var(pseudo));
            let blame = Blame::new(
                K::ClassInvariant,
                format!("class invariant for field {} of {cname}", fi.name),
                span,
            );
            self.sub(env, &lhs, &target, &blame);
        }
        // Explicit class invariant, over the cooked fields.
        if let Some(info) = self.ct.objs.get(cname) {
            let inv = info.invariant.clone();
            if !matches!(inv, Pred::True) {
                let rewritten = rewrite_this_fields(&rewrite_vv_fields(&inv));
                if !rewritten.free_vars().contains("v") {
                    let blame = Blame::new(
                        K::ClassInvariant,
                        format!("class invariant of {cname}"),
                        span,
                    );
                    self.push_sub_pred(env, Pred::True, rewritten, Sort::Int, &blame);
                }
            }
        }
    }
}

/// Replaces `this.g` by the pseudo-local `$field$g` in a predicate.
fn rewrite_this_fields(p: &Pred) -> Pred {
    fn go_term(t: &Term) -> Term {
        match t {
            Term::Field(b, f) => {
                if matches!(b.as_ref(), Term::Var(x) if x.as_str() == "this") {
                    Term::var(format!("$field${f}"))
                } else {
                    Term::field(go_term(b), f.clone())
                }
            }
            Term::App(f, args) => Term::app(f.clone(), args.iter().map(go_term).collect()),
            Term::Bin(op, a, b) => Term::bin(*op, go_term(a), go_term(b)),
            Term::Neg(a) => Term::neg(go_term(a)),
            other => other.clone(),
        }
    }
    map_pred_terms(p, &go_term)
}

/// Replaces `v.g` by `$field$g` (used for explicit class invariants at
/// constructor exits).
fn rewrite_vv_fields(p: &Pred) -> Pred {
    fn go_term(t: &Term) -> Term {
        match t {
            Term::Field(b, f) => {
                if matches!(b.as_ref(), Term::Var(x) if x.as_str() == "v") {
                    Term::var(format!("$field${f}"))
                } else {
                    Term::field(go_term(b), f.clone())
                }
            }
            Term::App(f, args) => Term::app(f.clone(), args.iter().map(go_term).collect()),
            Term::Bin(op, a, b) => Term::bin(*op, go_term(a), go_term(b)),
            Term::Neg(a) => Term::neg(go_term(a)),
            other => other.clone(),
        }
    }
    map_pred_terms(p, &go_term)
}

fn map_pred_terms(p: &Pred, f: &dyn Fn(&Term) -> Term) -> Pred {
    match p {
        Pred::And(ps) => Pred::and(ps.iter().map(|q| map_pred_terms(q, f)).collect()),
        Pred::Or(ps) => Pred::or(ps.iter().map(|q| map_pred_terms(q, f)).collect()),
        Pred::Not(q) => Pred::not(map_pred_terms(q, f)),
        Pred::Imp(a, b) => Pred::imp(map_pred_terms(a, f), map_pred_terms(b, f)),
        Pred::Iff(a, b) => Pred::iff(map_pred_terms(a, f), map_pred_terms(b, f)),
        Pred::Cmp(op, a, b) => Pred::cmp(*op, f(a), f(b)),
        Pred::App(g, args) => Pred::App(g.clone(), args.iter().map(f).collect()),
        Pred::TermPred(t) => Pred::TermPred(f(t)),
        other => other.clone(),
    }
}

/// Substitutes type variables structurally.
pub(crate) fn apply_tvars(t: &RType, map: &HashMap<Sym, RType>) -> RType {
    let base = match &t.base {
        Base::TVar(a) => {
            if let Some(r) = map.get(a) {
                return r.clone().strengthen(t.pred.clone());
            }
            t.base.clone()
        }
        Base::Arr(e, m) => Base::Arr(Box::new(apply_tvars(e, map)), *m),
        Base::Obj(c, m, args) => Base::Obj(
            c.clone(),
            *m,
            args.iter().map(|x| apply_tvars(x, map)).collect(),
        ),
        Base::Union(ps) => Base::Union(ps.iter().map(|x| apply_tvars(x, map)).collect()),
        Base::Fun(f) => {
            let mut inner = map.clone();
            for a in &f.tparams {
                inner.remove(a);
            }
            Base::Fun(Rc::new(RFun {
                tparams: f.tparams.clone(),
                params: f
                    .params
                    .iter()
                    .map(|(x, ty)| (x.clone(), apply_tvars(ty, &inner)))
                    .collect(),
                ret: apply_tvars(&f.ret, &inner),
            }))
        }
        other => other.clone(),
    };
    RType {
        base,
        pred: t.pred.clone(),
    }
}
