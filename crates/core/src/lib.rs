//! # rsc-core
//!
//! **Refined TypeScript (RSC)** — a reproduction of the refinement type
//! checker from *Refinement Types for TypeScript* (Vekris, Cosman & Jhala,
//! PLDI 2016) with every substrate built in-tree:
//!
//! * [`rsc_syntax`] parses the RSC input language,
//! * [`rsc_ssa`] translates it to the functional core IRSC (§3.1),
//! * this crate generates subtyping constraints over Liquid templates
//!   (Figure 5 + §4's reflection, hierarchies, mutability, overloads),
//! * [`rsc_liquid`] runs the predicate-abstraction fixpoint (§2.2),
//! * [`rsc_smt`] decides the verification conditions.
//!
//! # Quickstart
//!
//! ```
//! use rsc_core::{check_program, CheckerOptions};
//!
//! let result = check_program(
//!     r#"
//!     type nat = {v: number | 0 <= v};
//!     function abs(x: number): nat {
//!         if (x < 0) { return 0 - x; }
//!         return x;
//!     }
//!     "#,
//!     CheckerOptions::default(),
//! );
//! assert!(result.ok(), "{:?}", result.diagnostics);
//! ```

#![warn(missing_docs)]

mod calls;
mod checker;
mod diag;
mod rtype;
mod synth;
mod table;

pub use checker::{
    check_ir, check_program, check_program_ast, generate_artifacts, solve_artifacts, BundleReport,
    CheckArtifacts, CheckResult, CheckStats, Checker, CheckerOptions, Env, RetainedBundle,
};
pub use diag::{Diagnostic, Severity};
pub use rsc_liquid::{Blame, ObligationKind};
pub use rsc_syntax::{LineCol, LineIndex, Span};
pub use rtype::{Base, Prim, RFun, RType};
pub use table::{ClassTable, FieldInfo, MethodInfo, ObjInfo, ResolveError};
