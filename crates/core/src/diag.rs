//! Diagnostics reported by the checker.
//!
//! A [`Diagnostic`] is the user-facing end of the blame pipeline: it
//! carries an `R0001`-style error code (from the failed obligation's
//! [`rsc_liquid::ObligationKind`]), a primary source range, optional
//! labeled secondary ranges, and notes (expected/actual refinement
//! pretty-prints). Two renderings exist:
//!
//! * [`fmt::Display`] — a compact, source-free, deterministic form used
//!   by tests, golden fixtures, and the watch loop. Byte-identity of
//!   this rendering between incremental sessions and cold checks is a
//!   hard invariant (`tests/incremental_equivalence.rs`).
//! * [`Diagnostic::render`] — a rustc-style form with a source excerpt
//!   and caret underline, used by the one-shot CLI (it has the source
//!   text in hand).

use std::fmt;

use rsc_liquid::Blame;
use rsc_syntax::{LineIndex, Span};

/// The severity of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A verification failure (the program is rejected).
    Error,
    /// A lint finding (the program is still accepted).
    Warning,
    /// An informational note.
    Note,
}

/// A checker diagnostic.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Stable error code (`R0001`-style), when the diagnostic comes from
    /// a failed subtyping obligation. Front-end errors (parse, resolve)
    /// carry no code.
    pub code: Option<&'static str>,
    /// Human-readable message.
    pub message: String,
    /// Primary source range.
    pub span: Span,
    /// Labeled secondary ranges (e.g. the declaration the failing value
    /// was checked against).
    pub secondary: Vec<(Span, String)>,
    /// Notes, rendered after the message (expected/actual refinements).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic with no code (front-end errors).
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: None,
            message: message.into(),
            span,
            secondary: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic with a stable lint code (`L0001`-style).
    /// Warnings never affect the check verdict — [`crate::CheckResult`]
    /// keeps them in a separate `lints` list so the error stream stays
    /// byte-identical whether linting is on or off.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: Some(code),
            message: message.into(),
            span,
            secondary: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The diagnostic for a failed subtyping obligation: code from the
    /// obligation kind, expected/actual refinements as notes, the
    /// blame's related range as a secondary label.
    pub fn from_blame(b: &Blame) -> Self {
        let mut notes = Vec::new();
        if !b.expected.is_empty() {
            notes.push(format!("expected: {}", b.expected));
        }
        if !b.actual.is_empty() {
            notes.push(format!("actual: {}", b.actual));
        }
        Diagnostic {
            severity: Severity::Error,
            code: Some(b.kind.code()),
            message: b.message(),
            span: b.span,
            secondary: b.related.clone().into_iter().collect(),
            notes,
        }
    }

    /// Rustc-style rendering with a source excerpt and caret underline.
    /// `src` must be the text the diagnostic's spans refer to; `file` is
    /// only used for the `-->` location line. Convenience wrapper that
    /// indexes `src` itself — when rendering many diagnostics for one
    /// file, build one [`LineIndex`] and use [`Diagnostic::render_with`].
    pub fn render(&self, file: &str, src: &str) -> String {
        self.render_with(file, src, &LineIndex::new(src))
    }

    /// [`Diagnostic::render`] against a caller-supplied [`LineIndex`]
    /// (which must have been built from `src`).
    pub fn render_with(&self, file: &str, src: &str, idx: &LineIndex) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        let code = self.code.map(|c| format!("[{c}]")).unwrap_or_default();
        let mut out = format!("{sev}{code}: {}\n", self.message);
        if self.span.is_dummy() {
            for (span, label) in &self.secondary {
                out.push_str(&format!(
                    "  --> {file}:{}: {label}\n",
                    idx.render_range(src, *span)
                ));
            }
            for note in &self.notes {
                out.push_str(&format!("  = {note}\n"));
            }
            return out;
        }
        let start = idx.line_col(src, self.span.lo);
        let end = idx.line_col(src, self.span.hi);
        out.push_str(&format!(
            "  --> {file}:{}\n",
            idx.render_range(src, self.span)
        ));
        if let Some(text) = idx.line_text(src, start.line) {
            let gutter = start.line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {text}\n"));
            let line_chars = text.chars().count() as u32;
            let from = start.col.min(line_chars + 1);
            let to = if end.line == start.line {
                end.col.max(from + 1).min(line_chars + 2)
            } else {
                // Multi-line span: underline to the end of the first line.
                line_chars + 2
            };
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(from.saturating_sub(1) as usize),
                "^".repeat((to - from).max(1) as usize)
            ));
        }
        for (span, label) in &self.secondary {
            out.push_str(&format!(
                "  = see also {file}:{}: {label}\n",
                idx.render_range(src, *span)
            ));
        }
        for note in &self.notes {
            out.push_str(&format!("  = {note}\n"));
        }
        out
    }
}

/// The compact, source-free rendering: one header line plus one line per
/// secondary label and note. Deterministic — golden fixtures and the
/// session-vs-cold byte-identity tests pin this format.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        match self.code {
            Some(c) => write!(f, "{sev}[{c}] ({}): {}", self.span, self.message)?,
            None => write!(f, "{sev} ({}): {}", self.span, self.message)?,
        }
        for (span, label) in &self.secondary {
            write!(f, "\n  = see also ({span}): {label}")?;
        }
        for note in &self.notes {
            write!(f, "\n  = {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_liquid::{Blame, ObligationKind};

    fn blame() -> Blame {
        let mut b = Blame::new(
            ObligationKind::ArrayBounds,
            "array read index",
            Span {
                lo: 25,
                hi: 33,
                line: 2,
            },
        );
        b.expected = "0 <= v && v < len(a)".into();
        b.actual = "v = i + 1".into();
        b
    }

    #[test]
    fn display_is_compact_and_coded() {
        let d = Diagnostic::from_blame(&blame());
        let s = d.to_string();
        assert!(
            s.starts_with("error[R0008] (line 2): array bounds: array read index"),
            "{s}"
        );
        assert!(s.contains("= expected: 0 <= v && v < len(a)"), "{s}");
        assert!(s.contains("= actual: v = i + 1"), "{s}");
    }

    #[test]
    fn render_has_excerpt_and_caret() {
        let src = "function f(): void {\n    return a[i + 1];\n}\n";
        let d = Diagnostic::from_blame(&blame());
        let r = d.render("demo.rsc", src);
        assert!(
            r.contains("error[R0008]: array bounds: array read index"),
            "{r}"
        );
        assert!(r.contains("--> demo.rsc:2:5-2:13"), "{r}");
        assert!(r.contains("2 |     return a[i + 1];"), "{r}");
        assert!(r.contains("  |     ^^^^^^^^"), "{r}");
    }

    #[test]
    fn render_survives_dummy_and_out_of_range_spans() {
        let d = Diagnostic::error("front-end error", Span::dummy());
        let r = d.render("x.rsc", "abc");
        assert!(r.starts_with("error: front-end error"));
        let wild = Diagnostic::from_blame(&Blame::new(
            ObligationKind::Return,
            "",
            Span {
                lo: 9999,
                hi: 10002,
                line: 400,
            },
        ));
        // Out-of-range offsets clamp instead of panicking.
        let _ = wild.render("x.rsc", "abc\ndef\n");
    }
}
