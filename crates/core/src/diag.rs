//! Diagnostics reported by the checker.

use std::fmt;

use rsc_syntax::Span;

/// The severity of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A verification failure (the program is rejected).
    Error,
    /// An informational note.
    Note,
}

/// A checker diagnostic.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source location, when known.
    pub span: Span,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Note => "note",
        };
        write!(f, "{sev} ({}): {}", self.span, self.message)
    }
}
