//! Checker-level refinement types.
//!
//! An [`RType`] pairs a structural base with a refinement predicate over
//! the value variable `v`. Existential types from the paper's Figure 5 are
//! handled in the standard implementation style: instead of building
//! `∃z:T. S`, the checker eagerly binds a fresh `z` in the environment and
//! returns `S` referring to it ("unpacking on the fly").

use std::fmt;
use std::rc::Rc;

use rsc_logic::{CmpOp, Pred, Sort, Subst, Sym, Term};
use rsc_syntax::Mutability;

/// Primitive base types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prim {
    /// `number` (integers; the refinement logic is LIA).
    Num,
    /// `boolean`.
    Bool,
    /// `string`.
    Str,
    /// `void` (the type of statements / missing returns).
    Void,
    /// `undefined` — a distinct primitive, *not* bottom (§4.1).
    Undef,
    /// `null` — likewise distinct.
    Null,
}

/// A structural base type.
#[derive(Clone, Debug)]
pub enum Base {
    /// A primitive.
    Prim(Prim),
    /// A 32-bit bit-vector enum (§4.3), tagged with the enum name.
    Bv(Sym),
    /// An array with element type and object mutability.
    ///
    /// In this model arrays are fixed-length (no `push`/`pop` in verified
    /// code — the paper hits the same wall, §5.3), so `len` is a stable
    /// measure for *every* mutability; element writes require
    /// [`Mutability::Mutable`] or [`Mutability::Unique`].
    Arr(Box<RType>, Mutability),
    /// A class or interface instance with reference mutability and type
    /// arguments.
    Obj(Sym, Mutability, Vec<RType>),
    /// A function value.
    Fun(Rc<RFun>),
    /// A rigid type variable (inside a generic function's own body).
    TVar(Sym),
    /// A union (written `+` in the surface syntax). Erases to
    /// [`Sort::Ref`]; parts are discriminated by `ttag`/`null`/`undefined`
    /// predicates (§4.2).
    Union(Vec<RType>),
    /// An inference placeholder (element type of `new Array(n)` / `[]`),
    /// resolved by the first subtyping constraint against it.
    Infer(u32),
}

/// A (possibly polymorphic, dependent) function type.
#[derive(Clone, Debug)]
pub struct RFun {
    /// Type parameters.
    pub tparams: Vec<Sym>,
    /// Parameters: names and types; later types may mention earlier names.
    pub params: Vec<(Sym, RType)>,
    /// Return type (may mention parameter names).
    pub ret: RType,
}

/// A refinement type `{v : base | pred}`.
#[derive(Clone, Debug)]
pub struct RType {
    /// The structural part.
    pub base: Base,
    /// The refinement, over the value variable `v`.
    pub pred: Pred,
}

impl RType {
    /// `{v: base | true}`.
    pub fn trivial(base: Base) -> RType {
        RType {
            base,
            pred: Pred::True,
        }
    }

    /// `number`.
    pub fn number() -> RType {
        RType::trivial(Base::Prim(Prim::Num))
    }

    /// `boolean`.
    pub fn boolean() -> RType {
        RType::trivial(Base::Prim(Prim::Bool))
    }

    /// `string`.
    pub fn string() -> RType {
        RType::trivial(Base::Prim(Prim::Str))
    }

    /// `void`.
    pub fn void() -> RType {
        RType::trivial(Base::Prim(Prim::Void))
    }

    /// `undefined`.
    pub fn undefined() -> RType {
        RType {
            base: Base::Prim(Prim::Undef),
            pred: Pred::eq(Term::vv(), Term::app("undefv", vec![])),
        }
    }

    /// `null`.
    pub fn null() -> RType {
        RType {
            base: Base::Prim(Prim::Null),
            pred: Pred::eq(Term::vv(), Term::app("nullv", vec![])),
        }
    }

    /// `{v: number | v = n}`.
    pub fn num_lit(n: i64) -> RType {
        RType {
            base: Base::Prim(Prim::Num),
            pred: Pred::vv_eq(Term::int(n)),
        }
    }

    /// Strengthens the refinement: `T ∧ p` (the `◁` operator of §3.2).
    pub fn strengthen(mut self, p: Pred) -> RType {
        self.pred = Pred::and(vec![self.pred, p]);
        self
    }

    /// Self-strengthening `self(T, t) = T ∧ (v = t)` — only meaningful for
    /// sorts where equality is available.
    pub fn selfify(self, t: Term) -> RType {
        let p = Pred::vv_eq(t);
        self.strengthen(p)
    }

    /// The logic sort of values of this type.
    pub fn sort(&self) -> Sort {
        match &self.base {
            Base::Prim(Prim::Num) => Sort::Int,
            Base::Prim(Prim::Bool) => Sort::Bool,
            Base::Prim(Prim::Str) => Sort::Str,
            Base::Prim(Prim::Void) => Sort::Int,
            Base::Prim(Prim::Undef) | Base::Prim(Prim::Null) => Sort::Ref,
            Base::Bv(_) => Sort::Bv32,
            Base::Arr(..)
            | Base::Obj(..)
            | Base::Fun(_)
            | Base::TVar(_)
            | Base::Union(_)
            | Base::Infer(_) => Sort::Ref,
        }
    }

    /// Applies a term substitution to the refinement (and recursively to
    /// nested types).
    pub fn subst(&self, s: &Subst) -> RType {
        RType {
            base: self.base.subst(s),
            pred: s.apply_pred(&self.pred),
        }
    }

    /// The non-empty-array refinement `0 < len(v)`.
    pub fn nonempty_pred() -> Pred {
        Pred::cmp(CmpOp::Lt, Term::int(0), Term::len_of(Term::vv()))
    }
}

impl Base {
    fn subst(&self, s: &Subst) -> Base {
        match self {
            Base::Arr(e, m) => Base::Arr(Box::new(e.subst(s)), *m),
            Base::Obj(c, m, args) => {
                Base::Obj(c.clone(), *m, args.iter().map(|a| a.subst(s)).collect())
            }
            Base::Fun(f) => {
                // Avoid capturing parameter names: drop bindings for them.
                let mut s2 = Subst::new();
                for (x, t) in s.iter() {
                    if !f.params.iter().any(|(p, _)| p == x) {
                        s2.push(x.clone(), t.clone());
                    }
                }
                Base::Fun(Rc::new(RFun {
                    tparams: f.tparams.clone(),
                    params: f
                        .params
                        .iter()
                        .map(|(x, t)| (x.clone(), t.subst(&s2)))
                        .collect(),
                    ret: f.ret.subst(&s2),
                }))
            }
            Base::Union(parts) => Base::Union(parts.iter().map(|p| p.subst(s)).collect()),
            other => other.clone(),
        }
    }

    /// A short name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Base::Prim(Prim::Num) => "number".into(),
            Base::Prim(Prim::Bool) => "boolean".into(),
            Base::Prim(Prim::Str) => "string".into(),
            Base::Prim(Prim::Void) => "void".into(),
            Base::Prim(Prim::Undef) => "undefined".into(),
            Base::Prim(Prim::Null) => "null".into(),
            Base::Bv(n) => n.to_string(),
            Base::Arr(e, m) => format!("Array<{}, {}>", m.abbrev(), e.base.describe()),
            Base::Obj(c, m, _) => format!("{c}<{}>", m.abbrev()),
            Base::Fun(f) => format!("({} params) => …", f.params.len()),
            Base::TVar(a) => a.to_string(),
            Base::Union(ps) => ps
                .iter()
                .map(|p| p.base.describe())
                .collect::<Vec<_>>()
                .join(" + "),
            Base::Infer(u) => format!("?{u}"),
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if matches!(self.pred, Pred::True) {
            write!(f, "{}", self.base.describe())
        } else {
            write!(f, "{{v: {} | {}}}", self.base.describe(), self.pred)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selfify_strengthens() {
        let t = RType::number().selfify(Term::var("x"));
        assert_eq!(t.pred.to_string(), "v = x");
    }

    #[test]
    fn sorts() {
        assert_eq!(RType::number().sort(), Sort::Int);
        assert_eq!(RType::boolean().sort(), Sort::Bool);
        assert_eq!(
            RType::trivial(Base::Arr(Box::new(RType::number()), Mutability::Mutable)).sort(),
            Sort::Ref
        );
        assert_eq!(RType::trivial(Base::Bv(Sym::from("F"))).sort(), Sort::Bv32);
    }

    #[test]
    fn subst_avoids_fun_param_capture() {
        let f = RFun {
            tparams: vec![],
            params: vec![(Sym::from("x"), RType::number())],
            ret: RType {
                base: Base::Prim(Prim::Num),
                pred: Pred::cmp(CmpOp::Lt, Term::var("x"), Term::vv()),
            },
        };
        let t = RType::trivial(Base::Fun(Rc::new(f)));
        let s = Subst::one("x", Term::int(99));
        let t2 = t.subst(&s);
        let Base::Fun(f2) = &t2.base else { panic!() };
        // x is bound by the function type; must not be substituted.
        assert_eq!(f2.ret.pred.to_string(), "x < v");
    }
}
