//! Span-collector behavior: nesting, cross-thread overlap under the
//! work-stealing pool, deterministic aggregation, and the disabled path.
//!
//! The collector is one process-global, so every test that enables it
//! serializes on [`TEST_LOCK`] and drains before releasing it.

use std::sync::Mutex;

use threadpool::Pool;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with collection enabled and a clean collector, returning the
/// profile drained afterwards.
fn with_collector<T>(f: impl FnOnce() -> T) -> (T, rsc_obs::Profile) {
    let _guard = TEST_LOCK.lock().unwrap();
    rsc_obs::drain(); // discard leftovers from any earlier test
    rsc_obs::set_enabled(true);
    let out = f();
    rsc_obs::set_enabled(false);
    let profile = rsc_obs::drain();
    (out, profile)
}

#[test]
fn nested_spans_record_depth_and_containment() {
    let ((), profile) = with_collector(|| {
        let _outer = rsc_obs::span!("solve");
        {
            let _inner = rsc_obs::span!("smt-query");
            std::hint::black_box(0);
        }
    });
    assert_eq!(profile.spans.len(), 2);
    let outer = profile.spans.iter().find(|s| s.name == "solve").unwrap();
    let inner = profile
        .spans
        .iter()
        .find(|s| s.name == "smt-query")
        .unwrap();
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert_eq!(outer.tid, inner.tid);
    // The inner span is contained in the outer one.
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1);
}

#[test]
fn overlapping_spans_across_pool_threads_merge_deterministically() {
    const JOBS: u64 = 8;
    let run = || {
        let ((), profile) = with_collector(|| {
            let jobs: Vec<_> = (0..JOBS)
                .map(|i| {
                    move || {
                        let _b = rsc_obs::span!("solve-bundle", unit = i);
                        for _ in 0..(i % 3 + 1) {
                            let _q = rsc_obs::span!("smt-query");
                            std::hint::black_box(i);
                        }
                    }
                })
                .collect();
            Pool::new(4).run(jobs);
        });
        profile
    };

    let a = run();
    let b = run();

    // Raw span logs are wall-clock ordered and may differ between runs;
    // the aggregated views must not.
    let totals = |p: &rsc_obs::Profile| {
        p.phase_totals()
            .into_iter()
            .map(|ph| (ph.name, ph.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        totals(&a),
        vec![("smt-query", 15), ("solve-bundle", JOBS)],
        "phase totals keyed by name, independent of completion order"
    );
    assert_eq!(totals(&a), totals(&b));

    // Per-unit totals come back in unit (bundle-index) order.
    let units: Vec<u64> = a
        .unit_totals("solve-bundle")
        .into_iter()
        .map(|(u, _)| u)
        .collect();
    assert_eq!(units, (0..JOBS).collect::<Vec<_>>());
}

#[test]
fn disabled_collector_records_nothing() {
    let _guard = TEST_LOCK.lock().unwrap();
    rsc_obs::drain();
    rsc_obs::set_enabled(false);
    {
        let _s = rsc_obs::span!("solve");
        let _u = rsc_obs::span!("solve-bundle", unit = 7u64);
    }
    assert!(rsc_obs::drain().spans.is_empty());
    assert!(!rsc_obs::enabled());
}

#[test]
fn accumulate_folds_counts_and_totals() {
    let ((), profile) = with_collector(|| {
        let _a = rsc_obs::span!("parse");
    });
    let mut acc = std::collections::BTreeMap::new();
    profile.accumulate_into(&mut acc);
    profile.accumulate_into(&mut acc);
    assert_eq!(acc["parse"].0, 2);
    assert_eq!(acc["parse"].1, 2 * profile.total_ns("parse"));
}
