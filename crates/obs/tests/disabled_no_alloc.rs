//! The disabled fast path must be a branch on an atomic: no clock read,
//! no lock, and — asserted here with a counting allocator — zero heap
//! allocation per span site.
//!
//! This lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide and the count must not race
//! with unrelated tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_allocate_nothing() {
    rsc_obs::set_enabled(false);
    // Warm up the thread-locals the *enabled* path would use, so the
    // measurement below is purely the disabled branch.
    {
        let _w = rsc_obs::span!("warmup");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _s = rsc_obs::span!("solve");
        let _u = rsc_obs::span!("solve-bundle", unit = i);
        std::hint::black_box(i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled span! must not allocate (got {} allocations over 20k spans)",
        after - before
    );
}
