//! Fixed-bucket latency histograms.

/// Number of buckets: bucket `i < 31` covers durations in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally catches
/// sub-microsecond samples); the last bucket is unbounded above.
pub const BUCKETS: usize = 32;

/// A fixed-bucket histogram over microsecond durations.
///
/// Buckets are powers of two: 1 µs, 2 µs, 4 µs, ... ~17.9 min, +∞. The
/// geometry is fixed so histograms merge by plain bucket-wise addition
/// and percentile estimates are deterministic functions of the counts.
/// Percentiles are *upper bounds* (the top of the bucket holding the
/// requested rank) — coarse, but monotone and allocation-free.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        let bucket = if us <= 1 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_us += us;
    }

    /// Record one sample of `ns` nanoseconds (rounded down to µs).
    pub fn record_ns(&mut self, ns: u64) {
        self.record_us(ns / 1000);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// sample, with `q` in `[0, 1]`. Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(BUCKETS - 1)
    }

    /// The 50th percentile upper bound, in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// The 90th percentile upper bound, in microseconds.
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// The 99th percentile upper bound, in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
    }

    /// The raw bucket counts (for tests and export).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

/// Upper bound of bucket `i`, in microseconds (`u64::MAX` for the last).
fn bucket_upper_us(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_and_quantiles() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 3, 4, 7, 8, 100, 1000, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // 2 samples land in bucket 0 ([0,2)), p50 of 10 samples is the
        // 5th: 0,1,2,3,4 -> bucket of 4 is [4,8) -> upper bound 8.
        assert_eq!(h.p50_us(), 8);
        assert_eq!(h.quantile_us(0.0), 2); // rank clamps to 1
        assert!(h.p99_us() >= 100_000);
    }

    #[test]
    fn merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_us(5);
        b.record_us(5);
        b.record_us(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 510);
        let mut c = Histogram::new();
        c.record_us(5);
        c.record_us(5);
        c.record_us(500);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().p99_us(), 0);
    }
}
