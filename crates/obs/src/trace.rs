//! Chrome trace-event (Perfetto-loadable) emission.

use std::fmt::Write as _;

use crate::SpanRecord;

/// Render spans as a Chrome trace-event JSON document.
///
/// Each span becomes one complete (`"ph":"X"`) event with microsecond
/// `ts`/`dur`; Perfetto reconstructs nesting from `tid` plus time
/// containment. Phase names come from the closed span taxonomy (plain
/// ASCII identifiers), so no JSON string escaping is needed beyond
/// emitting them verbatim.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"rsc\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03}",
            s.name,
            s.tid,
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
        );
        if let Some(u) = s.unit {
            let _ = write!(out, ",\"args\":{{\"unit\":{u}}}");
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_events() {
        let spans = vec![
            SpanRecord {
                name: "parse",
                unit: None,
                tid: 1,
                depth: 0,
                start_ns: 1_500,
                dur_ns: 2_000,
            },
            SpanRecord {
                name: "solve-bundle",
                unit: Some(3),
                tid: 2,
                depth: 1,
                start_ns: 0,
                dur_ns: 10,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"args\":{\"unit\":3}"));
        assert!(json.trim_end().ends_with('}'));
    }
}
