//! # rsc-obs
//!
//! The observability layer for the RSC workspace: hierarchical phase
//! spans, a Chrome-trace-event writer, and a metrics registry with
//! monotonic counters and fixed-bucket histograms.
//!
//! The paper's evaluation (§6, Fig. 6) is a *timing* table, so the
//! reproduction needs per-phase cost accounting — parse → SSA →
//! class-table → constraint-gen → partition → per-bundle solve (down to
//! individual fixpoint iterations and SMT queries) — not just the
//! counters `CheckStats` already carries. This crate provides that
//! accounting with two hard properties:
//!
//! * **Disabled is (almost) free.** Collection is off by default and
//!   gated on one [`AtomicBool`]; a disabled [`span!`] is a relaxed
//!   atomic load returning a `None` guard — no clock read, no
//!   allocation, no lock. The CI `observability` leg asserts the bound.
//! * **Collection never feeds back into verdicts.** Spans record wall
//!   time only; nothing in the checker, fixpoint, or SMT solver reads
//!   the collector. Diagnostics are byte-identical with profiling on or
//!   off, at any `--jobs` (enforced by `tests/profile_determinism.rs`
//!   at the workspace root).
//!
//! Worker threads of the vendored work-stealing pool finish spans in
//! scheduling order, so the raw span log is wall-clock-ordered and
//! nondeterministic. Deterministic surfaces ([`Profile::phase_totals`])
//! therefore aggregate by *phase name* (and sum durations), never by
//! completion order; per-bundle data is keyed by bundle index via the
//! span's `unit` field.
//!
//! Like everything under `third_party/`, this crate is hand-rolled and
//! zero-dependency: the build environment has no registry access.

#![warn(missing_docs)]

mod histogram;
mod registry;
mod span;
mod trace;

pub use histogram::Histogram;
pub use registry::Registry;
pub use span::{
    drain, enabled, set_enabled, span, span_unit, Phase, Profile, SpanGuard, SpanRecord,
};
pub use trace::chrome_trace_json;

/// Start a phase span; the returned guard records the span when dropped.
///
/// ```
/// {
///     let _sp = rsc_obs::span!("solve");
///     // ... timed work ...
/// } // span recorded here (if collection is enabled)
/// ```
///
/// The two-argument form attaches a numeric unit (bundle index,
/// iteration number, ...):
///
/// ```
/// let _sp = rsc_obs::span!("solve-bundle", unit = 3usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, unit = $unit:expr) => {
        $crate::span_unit($name, $unit as u64)
    };
}
