//! A small metrics registry: named monotonic counters + histograms.

use std::collections::BTreeMap;

use crate::Histogram;

/// A registry of named monotonic counters and latency histograms.
///
/// Names are static: the metric set is closed and defined by the code
/// that feeds it (`serve`, the CLI, the bench harness). Iteration order
/// is name order (BTreeMap), so every export is deterministic given the
/// same counter values.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the counter `name` to `value` if larger (monotonic gauge).
    pub fn max(&mut self, name: &'static str, value: u64) {
        let e = self.counters.entry(name).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a sample into histogram `name` (nanoseconds).
    pub fn observe_ns(&mut self, name: &'static str, ns: u64) {
        self.histograms.entry(name).or_default().record_ns(ns);
    }

    /// Record a sample into histogram `name` (microseconds).
    pub fn observe_us(&mut self, name: &'static str, us: u64) {
        self.histograms.entry(name).or_default().record_us(us);
    }

    /// The histogram `name`, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms() {
        let mut r = Registry::new();
        r.add("checks", 1);
        r.add("checks", 2);
        r.max("docs", 4);
        r.max("docs", 2);
        r.observe_us("latency", 100);
        r.observe_us("latency", 200);
        assert_eq!(r.counter("checks"), 3);
        assert_eq!(r.counter("docs"), 4);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.histogram("latency").unwrap().count(), 2);
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["checks", "docs"]);
    }
}
