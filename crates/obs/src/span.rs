//! The span collector: guard-based phase timing behind one atomic gate.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The global on/off gate. Everything else in this module is reachable
/// only after a relaxed load of this flag observes `true`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Completed spans, pushed on guard drop. A plain mutex-guarded vector:
/// spans are coarse (phases, bundles, SMT queries), so contention is
/// modest, and correctness beats cleverness here.
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// The time origin all `start_ns` values are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense thread ids (1, 2, ...) in first-use order, so trace
/// `tid`s are readable. The *assignment* order is scheduling-dependent;
/// deterministic surfaces never key on it.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Turn collection on or off. Enabling also pins the time origin so the
/// first span does not pay the `OnceLock` initialization.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is collection currently enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One completed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (static: the taxonomy is closed).
    pub name: &'static str,
    /// Optional unit index (bundle index, fixpoint iteration, ...).
    pub unit: Option<u64>,
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Start time in nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct ActiveSpan {
    name: &'static str,
    unit: Option<u64>,
    tid: u64,
    depth: u32,
    start: Instant,
}

/// A live span; records itself into the collector when dropped.
///
/// Holds `None` when collection was disabled at creation time — the
/// disabled fast path allocates nothing and reads no clock.
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let dur_ns = active.start.elapsed().as_nanos() as u64;
            let start_ns = (active.start - epoch()).as_nanos() as u64;
            DEPTH.with(|d| d.set(active.depth));
            let record = SpanRecord {
                name: active.name,
                unit: active.unit,
                tid: active.tid,
                depth: active.depth,
                start_ns,
                dur_ns,
            };
            RECORDS.lock().unwrap().push(record);
        }
    }
}

/// Start a span (prefer the [`span!`](crate::span!) macro).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None)
}

/// Start a span carrying a unit index (prefer [`span!`](crate::span!)).
#[inline]
pub fn span_unit(name: &'static str, unit: u64) -> SpanGuard {
    span_inner(name, Some(unit))
}

#[inline]
fn span_inner(name: &'static str, unit: Option<u64>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard(None);
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard(Some(ActiveSpan {
        name,
        unit,
        tid: thread_id(),
        depth,
        start: Instant::now(),
    }))
}

/// Take every completed span out of the collector.
///
/// Spans are returned sorted by `(tid, start_ns, depth)` so nesting
/// reads top-down per thread; note the *values* are wall-clock and thus
/// run-dependent — deterministic consumers go through
/// [`Profile::phase_totals`] / [`Profile::unit_totals`].
pub fn drain() -> Profile {
    let mut spans = std::mem::take(&mut *RECORDS.lock().unwrap());
    spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth));
    Profile { spans }
}

/// A drained batch of spans plus deterministic aggregations over it.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// The raw spans, sorted by `(tid, start_ns, depth)`.
    pub spans: Vec<SpanRecord>,
}

/// Aggregate cost of one phase name across a [`Profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Phase name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
}

impl Profile {
    /// Per-phase `(count, total)` aggregation, sorted by phase name.
    ///
    /// This is the deterministic merge point for the work-stealing pool:
    /// whatever order worker threads *completed* spans in, the totals
    /// are keyed and ordered by name alone.
    pub fn phase_totals(&self) -> Vec<Phase> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = totals.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        totals
            .into_iter()
            .map(|(name, (count, total_ns))| Phase {
                name,
                count,
                total_ns,
            })
            .collect()
    }

    /// Summed duration per `unit` for spans named `name`, sorted by
    /// unit index — e.g. per-bundle solve time in bundle-index order,
    /// independent of completion order.
    pub fn unit_totals(&self, name: &str) -> Vec<(u64, u64)> {
        let mut totals: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if s.name == name {
                if let Some(u) = s.unit {
                    *totals.entry(u).or_insert(0) += s.dur_ns;
                }
            }
        }
        totals.into_iter().collect()
    }

    /// Total duration of all spans named `name`, in nanoseconds.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Fold this profile's per-phase totals into a running accumulator
    /// (used by `rsc fuzz` / `rsc --watch` for aggregate summaries).
    pub fn accumulate_into(&self, acc: &mut BTreeMap<&'static str, (u64, u64)>) {
        for p in self.phase_totals() {
            let e = acc.entry(p.name).or_insert((0, 0));
            e.0 += p.count;
            e.1 += p.total_ns;
        }
    }
}
