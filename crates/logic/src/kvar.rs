use std::fmt;

use crate::{Sort, Sym};

/// The identifier of a κ-variable (an unknown refinement of Liquid
/// inference, §2.2.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KVarId(pub u32);

impl fmt::Display for KVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$k{}", self.0)
    }
}

/// Metadata for a κ-variable: the sort of its value variable and the
/// variables (with sorts) that may appear in its solution — i.e. the scope
/// over which well-formedness is enforced.
///
/// A κ-variable stands for an unknown refinement `{v : b | κ}`; the Liquid
/// fixpoint assigns it a conjunction of instantiated [`crate::Qualifier`]s.
#[derive(Clone, Debug)]
pub struct KVar {
    /// The κ identifier.
    pub id: KVarId,
    /// The sort of the value variable `v` in this refinement.
    pub vv_sort: Sort,
    /// In-scope variables and their sorts, usable by qualifier
    /// instantiation.
    pub scope: Vec<(Sym, Sort)>,
    /// A human-readable hint of where the κ came from (for diagnostics).
    pub origin: String,
}

impl KVar {
    /// Creates a new κ-variable description.
    pub fn new(
        id: KVarId,
        vv_sort: Sort,
        scope: Vec<(Sym, Sort)>,
        origin: impl Into<String>,
    ) -> Self {
        KVar {
            id,
            vv_sort,
            scope,
            origin: origin.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(KVarId(7).to_string(), "$k7");
    }

    #[test]
    fn kvar_new() {
        let k = KVar::new(
            KVarId(0),
            Sort::Int,
            vec![(Sym::from("a"), Sort::Ref)],
            "phi i2",
        );
        assert_eq!(k.scope.len(), 1);
        assert_eq!(k.origin, "phi i2");
    }
}
