use std::collections::BTreeSet;
use std::fmt;

use crate::{KVarId, Subst, Sym, Term};

/// Comparison operators between terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less than (integers).
    Lt,
    /// Less or equal (integers).
    Le,
    /// Strictly greater than (integers).
    Gt,
    /// Greater or equal (integers).
    Ge,
}

impl CmpOp {
    /// The surface symbol for this comparison.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The negated comparison (`!(a < b)` is `a >= b`, etc.).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Flips the sides (`a < b` iff `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A logical predicate `p` (§3.2):
///
/// ```text
/// p ::= p ∧ p | ¬p | t   (plus ∨, ⇒, ⇔ as derived forms)
/// ```
///
/// In addition to concrete formulas, a predicate may contain κ-variables
/// ([`Pred::KVar`]) with pending substitutions — the unknown refinements of
/// Liquid inference (§2.2.1). A predicate with no κ-variables is *concrete*
/// and can be decided by the SMT layer.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// The trivially true predicate.
    True,
    /// The trivially false predicate.
    False,
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Implication.
    Imp(Box<Pred>, Box<Pred>),
    /// Bi-implication.
    Iff(Box<Pred>, Box<Pred>),
    /// Comparison between two terms.
    Cmp(CmpOp, Term, Term),
    /// Uninterpreted predicate application, e.g. `impl(x, "ObjectType")`.
    App(Sym, Vec<Term>),
    /// Truthiness of a boolean-sorted term (e.g. a guard variable).
    TermPred(Term),
    /// A κ-variable under a pending substitution: the unknown refinement
    /// `κ[θ]` of Liquid type inference.
    KVar(KVarId, Subst),
}

impl Pred {
    /// A comparison predicate (constant-folds integer literal comparisons).
    pub fn cmp(op: CmpOp, a: Term, b: Term) -> Pred {
        if let (Term::IntLit(x), Term::IntLit(y)) = (&a, &b) {
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
            return if r { Pred::True } else { Pred::False };
        }
        Pred::Cmp(op, a, b)
    }

    /// `a = b`.
    pub fn eq(a: Term, b: Term) -> Pred {
        Pred::cmp(CmpOp::Eq, a, b)
    }

    /// `v = t` — the "selfification" predicate (§3.2, the `self` operator).
    pub fn vv_eq(t: Term) -> Pred {
        Pred::eq(Term::vv(), t)
    }

    /// Smart conjunction: flattens nested conjunctions, drops `true`,
    /// collapses to `false` on any false conjunct.
    pub fn and(ps: Vec<Pred>) -> Pred {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Pred::True => {}
                Pred::False => return Pred::False,
                Pred::And(qs) => out.extend(qs),
                q => out.push(q),
            }
        }
        match out.len() {
            0 => Pred::True,
            1 => out.pop().unwrap(),
            _ => Pred::And(out),
        }
    }

    /// Smart disjunction.
    pub fn or(ps: Vec<Pred>) -> Pred {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Pred::False => {}
                Pred::True => return Pred::True,
                Pred::Or(qs) => out.extend(qs),
                q => out.push(q),
            }
        }
        match out.len() {
            0 => Pred::False,
            1 => out.pop().unwrap(),
            _ => Pred::Or(out),
        }
    }

    /// Smart negation: pushes through literals and double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Pred) -> Pred {
        match p {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(q) => *q,
            Pred::Cmp(op, a, b) => Pred::Cmp(op.negate(), a, b),
            q => Pred::Not(Box::new(q)),
        }
    }

    /// Smart implication.
    pub fn imp(a: Pred, b: Pred) -> Pred {
        match (&a, &b) {
            (Pred::True, _) => b,
            (Pred::False, _) => Pred::True,
            (_, Pred::True) => Pred::True,
            _ => Pred::Imp(Box::new(a), Box::new(b)),
        }
    }

    /// Bi-implication.
    pub fn iff(a: Pred, b: Pred) -> Pred {
        Pred::Iff(Box::new(a), Box::new(b))
    }

    /// True if the predicate contains no κ-variables.
    pub fn is_concrete(&self) -> bool {
        match self {
            Pred::KVar(..) => false,
            Pred::True | Pred::False | Pred::Cmp(..) | Pred::App(..) | Pred::TermPred(..) => true,
            Pred::And(ps) | Pred::Or(ps) => ps.iter().all(Pred::is_concrete),
            Pred::Not(p) => p.is_concrete(),
            Pred::Imp(a, b) | Pred::Iff(a, b) => a.is_concrete() && b.is_concrete(),
        }
    }

    /// Collects all κ-variable occurrences (id and pending substitution).
    pub fn kvars(&self) -> Vec<(KVarId, Subst)> {
        let mut out = Vec::new();
        self.kvars_into(&mut out);
        out
    }

    fn kvars_into(&self, out: &mut Vec<(KVarId, Subst)>) {
        match self {
            Pred::KVar(k, s) => out.push((*k, s.clone())),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|p| p.kvars_into(out)),
            Pred::Not(p) => p.kvars_into(out),
            Pred::Imp(a, b) | Pred::Iff(a, b) => {
                a.kvars_into(out);
                b.kvars_into(out);
            }
            _ => {}
        }
    }

    /// Collects the free variables of the predicate. Variables appearing in
    /// κ-variable substitution ranges count as free; substitution domains do
    /// not.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|p| p.free_vars_into(out)),
            Pred::Not(p) => p.free_vars_into(out),
            Pred::Imp(a, b) | Pred::Iff(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Pred::Cmp(_, a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Pred::App(_, args) => args.iter().for_each(|a| a.free_vars_into(out)),
            Pred::TermPred(t) => t.free_vars_into(out),
            Pred::KVar(_, s) => {
                for (_, t) in s.iter() {
                    t.free_vars_into(out);
                }
            }
        }
    }

    /// The free variables of the predicate.
    pub fn free_vars(&self) -> BTreeSet<Sym> {
        let mut s = BTreeSet::new();
        self.free_vars_into(&mut s);
        s
    }

    /// Splits a predicate into its top-level conjuncts.
    pub fn conjuncts(self) -> Vec<Pred> {
        match self {
            Pred::And(ps) => ps,
            Pred::True => vec![],
            p => vec![p],
        }
    }
}

impl Pred {
    /// Renders the predicate into `out`. The one rendering
    /// implementation — [`fmt::Display`] delegates here — so the output
    /// is the `Display` output by construction. VC canonicalization
    /// renders every conjunct of every query (twice: sort key and cache
    /// key), which makes rendering hot enough that skipping the
    /// formatter machinery on interior nodes is measurable.
    pub fn write_into(&self, out: &mut String) {
        use fmt::Write;
        match self {
            Pred::True => out.push_str("true"),
            Pred::False => out.push_str("false"),
            Pred::And(ps) => {
                out.push('(');
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" && ");
                    }
                    p.write_into(out);
                }
                out.push(')');
            }
            Pred::Or(ps) => {
                out.push('(');
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" || ");
                    }
                    p.write_into(out);
                }
                out.push(')');
            }
            Pred::Not(p) => {
                out.push_str("!(");
                p.write_into(out);
                out.push(')');
            }
            Pred::Imp(a, b) => {
                out.push('(');
                a.write_into(out);
                out.push_str(" => ");
                b.write_into(out);
                out.push(')');
            }
            Pred::Iff(a, b) => {
                out.push('(');
                a.write_into(out);
                out.push_str(" <=> ");
                b.write_into(out);
                out.push(')');
            }
            Pred::Cmp(op, a, b) => {
                a.write_into(out);
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
                b.write_into(out);
            }
            Pred::App(g, args) => {
                out.push_str(g.as_str());
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_into(out);
                }
                out.push(')');
            }
            Pred::TermPred(t) => t.write_into(out),
            Pred::KVar(k, s) => {
                let _ = write!(out, "{k}{s}");
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_and_flattens() {
        let p = Pred::and(vec![
            Pred::True,
            Pred::and(vec![Pred::vv_eq(Term::int(0)), Pred::True]),
        ]);
        assert_eq!(p, Pred::Cmp(CmpOp::Eq, Term::vv(), Term::int(0)));
    }

    #[test]
    fn smart_and_false_collapses() {
        let p = Pred::and(vec![Pred::vv_eq(Term::int(0)), Pred::False]);
        assert_eq!(p, Pred::False);
    }

    #[test]
    fn cmp_constant_folds() {
        assert_eq!(Pred::cmp(CmpOp::Lt, Term::int(1), Term::int(2)), Pred::True);
        assert_eq!(
            Pred::cmp(CmpOp::Ge, Term::int(1), Term::int(2)),
            Pred::False
        );
    }

    #[test]
    fn not_pushes_through_cmp() {
        let p = Pred::not(Pred::cmp(CmpOp::Lt, Term::var("x"), Term::var("y")));
        assert_eq!(p, Pred::Cmp(CmpOp::Ge, Term::var("x"), Term::var("y")));
    }

    #[test]
    fn concrete_detection() {
        let p = Pred::and(vec![
            Pred::vv_eq(Term::int(1)),
            Pred::KVar(KVarId(3), Subst::new()),
        ]);
        assert!(!p.is_concrete());
        assert_eq!(p.kvars().len(), 1);
    }

    #[test]
    fn display() {
        let p = Pred::imp(
            Pred::cmp(CmpOp::Lt, Term::int(0), Term::len_of(Term::var("a"))),
            Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
        );
        assert_eq!(p.to_string(), "(0 < len(a) => 0 <= v)");
    }
}
