use std::fmt;

use crate::{Pred, Sym, Term};

/// A parallel substitution of terms for variables, `[t₁/x₁, …, tₙ/xₙ]`.
///
/// Substitutions are applied simultaneously (not sequentially), matching
/// the standard convention of refinement type systems. There are no binders
/// inside predicates, so application is capture-free by construction;
/// κ-variable occurrences *compose* the substitution into their pending
/// substitution.
///
/// ```
/// use rsc_logic::{Pred, Subst, Term, CmpOp};
/// let mut s = Subst::new();
/// s.push("x", Term::int(3));
/// let p = Pred::cmp(CmpOp::Lt, Term::var("x"), Term::var("y"));
/// assert_eq!(s.apply_pred(&p).to_string(), "3 < y");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Subst {
    pairs: Vec<(Sym, Term)>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// A one-variable substitution `[t/x]`.
    pub fn one(x: impl Into<Sym>, t: Term) -> Self {
        let mut s = Subst::new();
        s.push(x, t);
        s
    }

    /// Adds a binding `[t/x]`. If `x` is already in the domain, the older
    /// binding is replaced.
    pub fn push(&mut self, x: impl Into<Sym>, t: Term) {
        let x = x.into();
        self.pairs.retain(|(y, _)| *y != x);
        self.pairs.push((x, t));
    }

    /// Looks up the image of `x`.
    pub fn lookup(&self, x: &Sym) -> Option<&Term> {
        self.pairs.iter().find(|(y, _)| y == x).map(|(_, t)| t)
    }

    /// True if the substitution has an empty domain.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the (variable, term) pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Sym, Term)> {
        self.pairs.iter()
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        if self.is_empty() {
            return t.clone();
        }
        match t {
            Term::Var(x) => self.lookup(x).cloned().unwrap_or_else(|| t.clone()),
            Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => t.clone(),
            Term::Field(b, f) => Term::field(self.apply_term(b), f.clone()),
            Term::App(f, args) => {
                Term::app(f.clone(), args.iter().map(|a| self.apply_term(a)).collect())
            }
            Term::Bin(op, a, b) => Term::bin(*op, self.apply_term(a), self.apply_term(b)),
            Term::Neg(a) => Term::neg(self.apply_term(a)),
        }
    }

    /// Applies the substitution to a predicate. A κ-variable occurrence
    /// `κ[θ]` becomes `κ[self ∘ θ]`: the pending substitution is composed.
    pub fn apply_pred(&self, p: &Pred) -> Pred {
        if self.is_empty() {
            return p.clone();
        }
        match p {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::And(ps) => Pred::and(ps.iter().map(|q| self.apply_pred(q)).collect()),
            Pred::Or(ps) => Pred::or(ps.iter().map(|q| self.apply_pred(q)).collect()),
            Pred::Not(q) => Pred::not(self.apply_pred(q)),
            Pred::Imp(a, b) => Pred::imp(self.apply_pred(a), self.apply_pred(b)),
            Pred::Iff(a, b) => Pred::iff(self.apply_pred(a), self.apply_pred(b)),
            Pred::Cmp(op, a, b) => Pred::cmp(*op, self.apply_term(a), self.apply_term(b)),
            Pred::App(f, args) => {
                Pred::App(f.clone(), args.iter().map(|a| self.apply_term(a)).collect())
            }
            Pred::TermPred(t) => Pred::TermPred(self.apply_term(t)),
            Pred::KVar(k, theta) => Pred::KVar(*k, self.compose(theta)),
        }
    }

    /// Composes `self ∘ theta`: first `theta` is applied, then `self`.
    /// Variables in `self`'s domain that `theta` does not mention are also
    /// included, so the composed substitution subsumes both.
    pub fn compose(&self, theta: &Subst) -> Subst {
        let mut out = Subst::new();
        for (x, t) in theta.iter() {
            out.push(x.clone(), self.apply_term(t));
        }
        for (x, t) in self.iter() {
            if out.lookup(x).is_none() {
                out.push(x.clone(), t.clone());
            }
        }
        out
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (x, t)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}/{x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, KVarId};

    #[test]
    fn parallel_not_sequential() {
        // [y/x, x/y] swaps x and y.
        let mut s = Subst::new();
        s.push("x", Term::var("y"));
        s.push("y", Term::var("x"));
        let t = Term::add(Term::var("x"), Term::var("y"));
        assert_eq!(s.apply_term(&t).to_string(), "(y + x)");
    }

    #[test]
    fn kvar_composition() {
        let inner = Subst::one("v", Term::var("w"));
        let p = Pred::KVar(KVarId(0), inner);
        let outer = Subst::one("w", Term::int(5));
        let q = outer.apply_pred(&p);
        match q {
            Pred::KVar(_, theta) => {
                assert_eq!(theta.lookup(&Sym::from("v")), Some(&Term::int(5)));
                // outer's own binding carried along
                assert_eq!(theta.lookup(&Sym::from("w")), Some(&Term::int(5)));
            }
            _ => panic!("expected kvar"),
        }
    }

    #[test]
    fn push_replaces() {
        let mut s = Subst::new();
        s.push("x", Term::int(1));
        s.push("x", Term::int(2));
        assert_eq!(s.lookup(&Sym::from("x")), Some(&Term::int(2)));
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn apply_pred_folds() {
        let s = Subst::one("x", Term::int(1));
        let p = Pred::cmp(CmpOp::Lt, Term::var("x"), Term::int(2));
        assert_eq!(s.apply_pred(&p), Pred::True);
    }
}
