use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned-ish symbol: a cheaply clonable, hashable string.
///
/// `Sym` is used for every identifier in the logic and throughout the
/// checker pipeline (variables, field names, class names, uninterpreted
/// function symbols).
///
/// ```
/// use rsc_logic::Sym;
/// let a = Sym::from("len");
/// let b = Sym::from(String::from("len"));
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "len");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(Arc<str>);

impl Sym {
    /// Creates a new symbol from a string slice.
    pub fn new(s: &str) -> Self {
        Sym(Arc::from(s))
    }

    /// Returns the underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym(Arc::from(s.as_str()))
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        s.clone()
    }
}

impl Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sym_equality_and_hash() {
        let mut m: HashMap<Sym, i32> = HashMap::new();
        m.insert(Sym::from("x"), 1);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(Sym::from("x"), "x");
    }

    #[test]
    fn sym_display() {
        assert_eq!(Sym::from("len").to_string(), "len");
    }

    #[test]
    fn sym_ordering() {
        let mut v = [Sym::from("b"), Sym::from("a")];
        v.sort();
        assert_eq!(v[0], "a");
    }
}
