//! # rsc-logic
//!
//! The refinement logic underlying Refined TypeScript (RSC), following
//! §3.2 of *Refinement Types for TypeScript* (PLDI 2016).
//!
//! Logical predicates `p` are quantifier-free formulas over terms `t`:
//! variables, constants, the value variable `v` (written ν in the paper),
//! the receiver `this`, field accesses `t.f`, uninterpreted function
//! applications `f(t̄)` (e.g. `len(a)`, `ttag(x)`, `impl(x, C)`), linear
//! arithmetic, and 32-bit bit-vector operations (used to encode interface
//! hierarchies, §4.3 of the paper).
//!
//! The crate also provides:
//!
//! * [`Sort`]s and sort checking ([`SortEnv`]) so that predicates can be
//!   checked well-formed before being shipped to the SMT layer,
//! * capture-free [`Subst`]itutions,
//! * κ-variables ([`KVar`]) with pending substitutions, the unknowns of
//!   Liquid type inference (§2.2.1),
//! * [`Qualifier`]s, the logical templates from which Liquid inference
//!   builds candidate refinements.
//!
//! # Example
//!
//! ```
//! use rsc_logic::{Pred, Term, CmpOp};
//!
//! // 0 <= v && v < len(a)   — the `idx<a>` refinement from the paper.
//! let v = Term::var("v");
//! let len_a = Term::app("len", vec![Term::var("a")]);
//! let p = Pred::and(vec![
//!     Pred::cmp(CmpOp::Le, Term::int(0), v.clone()),
//!     Pred::cmp(CmpOp::Lt, v, len_a),
//! ]);
//! assert_eq!(p.to_string(), "(0 <= v && v < len(a))");
//! ```

#![warn(missing_docs)]

mod kvar;
mod pred;
mod qualifier;
mod sort;
mod subst;
mod sym;
mod term;

pub use kvar::{KVar, KVarId};
pub use pred::{CmpOp, Pred};
pub use qualifier::{prelude_qualifiers, Qualifier};
pub use sort::{check_pred_in, sort_of_in, FunSig, Sort, SortEnv, SortLookup, SortScope};
pub use subst::Subst;
pub use sym::Sym;
pub use term::{BinOp, Term};

/// The reserved name of the value variable (ν in the paper).
pub const VV: &str = "v";

/// The reserved name of the receiver variable.
pub const THIS: &str = "this";

/// Sentinel integer constant used to model the `undefined` value after sort
/// erasure (see DESIGN.md). It is unreachable by ordinary program arithmetic.
pub const UNDEFINED_SENTINEL: i64 = i64::MIN + 0x7001;

/// Sentinel integer constant used to model the `null` value after sort
/// erasure.
pub const NULL_SENTINEL: i64 = i64::MIN + 0x7002;
