use std::collections::BTreeSet;
use std::fmt;

use crate::Sym;

/// Binary operations on logical terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication. Products with at least one constant operand
    /// are linear; variable products are sent to the SMT layer as the
    /// uninterpreted function `mul` (the paper handles nonlinear facts via
    /// ghost-function axioms, §5).
    Mul,
    /// Integer division (uninterpreted at the SMT layer unless by constant).
    Div,
    /// Integer modulus (uninterpreted at the SMT layer unless by constant).
    Mod,
    /// Bit-vector and (32-bit).
    BvAnd,
    /// Bit-vector or (32-bit).
    BvOr,
}

impl BinOp {
    /// The surface symbol for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::BvAnd => "&",
            BinOp::BvOr => "|",
        }
    }
}

/// A logical term `t` (§3.2 of the paper):
///
/// ```text
/// t ::= x | c | v | this | t.f | f(t̄) | b(t̄)
/// ```
///
/// `v` and `this` are ordinary [`Term::Var`]s with reserved names
/// ([`crate::VV`] and [`crate::THIS`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable (including the value variable `v` and `this`).
    Var(Sym),
    /// An integer literal.
    IntLit(i64),
    /// A boolean literal.
    BoolLit(bool),
    /// A string literal (interpreted only up to equality of distinct
    /// literals).
    StrLit(Sym),
    /// A 32-bit bit-vector literal.
    BvLit(u32),
    /// Field access `t.f`. Restricted by well-formedness to immutable
    /// fields (§3.2).
    Field(Box<Term>, Sym),
    /// Application of an uninterpreted function, e.g. `len(a)`.
    App(Sym, Vec<Term>),
    /// A binary operation.
    Bin(BinOp, Box<Term>, Box<Term>),
    /// Integer negation.
    Neg(Box<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(x: impl Into<Sym>) -> Term {
        Term::Var(x.into())
    }

    /// The value variable `v` (ν in the paper).
    pub fn vv() -> Term {
        Term::Var(Sym::from(crate::VV))
    }

    /// The receiver variable `this`.
    pub fn this() -> Term {
        Term::Var(Sym::from(crate::THIS))
    }

    /// An integer literal term.
    pub fn int(n: i64) -> Term {
        Term::IntLit(n)
    }

    /// A boolean literal term.
    pub fn bool(b: bool) -> Term {
        Term::BoolLit(b)
    }

    /// A string literal term.
    pub fn str(s: impl Into<Sym>) -> Term {
        Term::StrLit(s.into())
    }

    /// A 32-bit bit-vector literal term.
    pub fn bv(n: u32) -> Term {
        Term::BvLit(n)
    }

    /// A field access `t.f`.
    pub fn field(base: Term, f: impl Into<Sym>) -> Term {
        Term::Field(Box::new(base), f.into())
    }

    /// An uninterpreted application `f(args)`.
    pub fn app(f: impl Into<Sym>, args: Vec<Term>) -> Term {
        Term::App(f.into(), args)
    }

    /// `len(t)` — the uninterpreted array-length measure.
    pub fn len_of(t: Term) -> Term {
        Term::app("len", vec![t])
    }

    /// `ttag(t)` — the uninterpreted type-tag measure (§4.2).
    pub fn ttag_of(t: Term) -> Term {
        Term::app("ttag", vec![t])
    }

    /// A binary operation term, constant-folding integer arithmetic.
    pub fn bin(op: BinOp, a: Term, b: Term) -> Term {
        if let (Term::IntLit(x), Term::IntLit(y)) = (&a, &b) {
            let folded = match op {
                BinOp::Add => x.checked_add(*y),
                BinOp::Sub => x.checked_sub(*y),
                BinOp::Mul => x.checked_mul(*y),
                BinOp::Div if *y != 0 => Some(x.wrapping_div(*y)),
                BinOp::Mod if *y != 0 => Some(x.wrapping_rem(*y)),
                _ => None,
            };
            if let Some(n) = folded {
                return Term::IntLit(n);
            }
        }
        if let (Term::BvLit(x), Term::BvLit(y)) = (&a, &b) {
            match op {
                BinOp::BvAnd => return Term::BvLit(x & y),
                BinOp::BvOr => return Term::BvLit(x | y),
                _ => {}
            }
        }
        Term::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Term {
        Term::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::bin(BinOp::Mul, a, b)
    }

    /// Integer negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(a: Term) -> Term {
        match a {
            Term::IntLit(n) => Term::IntLit(-n),
            other => Term::Neg(Box::new(other)),
        }
    }

    /// Collects the free variables of the term into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Term::Var(x) => {
                out.insert(x.clone());
            }
            Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => {}
            Term::Field(b, _) => b.free_vars_into(out),
            Term::App(_, args) => args.iter().for_each(|a| a.free_vars_into(out)),
            Term::Bin(_, a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Term::Neg(a) => a.free_vars_into(out),
        }
    }

    /// The free variables of the term.
    pub fn free_vars(&self) -> BTreeSet<Sym> {
        let mut s = BTreeSet::new();
        self.free_vars_into(&mut s);
        s
    }

    /// True if the term mentions variable `x`.
    pub fn mentions(&self, x: &Sym) -> bool {
        match self {
            Term::Var(y) => y == x,
            Term::IntLit(_) | Term::BoolLit(_) | Term::StrLit(_) | Term::BvLit(_) => false,
            Term::Field(b, _) => b.mentions(x),
            Term::App(_, args) => args.iter().any(|a| a.mentions(x)),
            Term::Bin(_, a, b) => a.mentions(x) || b.mentions(x),
            Term::Neg(a) => a.mentions(x),
        }
    }
}

impl Term {
    /// Renders the term into `out`. This is the one rendering
    /// implementation — [`fmt::Display`] delegates here — so the output
    /// is the `Display` output by construction. Rendering is on the VC
    /// canonicalization hot path (every conjunct of every query is
    /// rendered for the cache key), where appending to a `String`
    /// directly avoids the formatter machinery on interior nodes.
    pub fn write_into(&self, out: &mut String) {
        use fmt::Write;
        match self {
            Term::Var(x) => out.push_str(x.as_str()),
            Term::IntLit(n) => {
                let _ = write!(out, "{n}");
            }
            Term::BoolLit(b) => out.push_str(if *b { "true" } else { "false" }),
            Term::StrLit(s) => {
                out.push('"');
                out.push_str(s.as_str());
                out.push('"');
            }
            Term::BvLit(n) => {
                let _ = write!(out, "{n:#x}");
            }
            Term::Field(b, fld) => {
                b.write_into(out);
                out.push('.');
                out.push_str(fld.as_str());
            }
            Term::App(g, args) => {
                out.push_str(g.as_str());
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_into(out);
                }
                out.push(')');
            }
            Term::Bin(op, a, b) => {
                out.push('(');
                a.write_into(out);
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
                b.write_into(out);
                out.push(')');
            }
            Term::Neg(a) => {
                out.push_str("-(");
                a.write_into(out);
                out.push(')');
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        assert_eq!(Term::add(Term::int(2), Term::int(3)), Term::int(5));
        assert_eq!(Term::mul(Term::int(4), Term::int(5)), Term::int(20));
        assert_eq!(
            Term::bin(BinOp::BvAnd, Term::bv(0xff00), Term::bv(0x0ff0)),
            Term::bv(0x0f00)
        );
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let t = Term::add(Term::var("x"), Term::len_of(Term::var("a")));
        assert_eq!(t.to_string(), "(x + len(a))");
        assert_eq!(Term::field(Term::this(), "w").to_string(), "this.w");
    }

    #[test]
    fn free_vars() {
        let t = Term::add(Term::var("x"), Term::len_of(Term::var("a")));
        let fv = t.free_vars();
        assert!(fv.contains("x") && fv.contains("a"));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn mentions() {
        let t = Term::field(Term::var("o"), "f");
        assert!(t.mentions(&Sym::from("o")));
        assert!(!t.mentions(&Sym::from("f")));
    }

    #[test]
    fn neg_folds_literal() {
        assert_eq!(Term::neg(Term::int(7)), Term::int(-7));
    }
}
