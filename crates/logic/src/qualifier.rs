use std::fmt;

use crate::{CmpOp, Pred, Sort, Subst, Sym, Term};

/// A logical qualifier: a predicate template over the value variable `v`
/// and placeholder parameters, used by Liquid inference to build candidate
/// refinements (§2.2.1; "simple terms that have been predefined in a
/// prelude").
///
/// Instantiation replaces each parameter with an in-scope program variable
/// of a matching sort. For example the qualifier `v < len(★a)` with
/// `★a : ref` instantiates to `v < len(a)` for every reference `a` in
/// scope — which is how rsc discovers `idx<a>` in the `minIndex` example.
#[derive(Clone, Debug)]
pub struct Qualifier {
    /// Name for diagnostics.
    pub name: String,
    /// The sort of the value variable this qualifier refines.
    pub vv_sort: Sort,
    /// Placeholder parameters and the sorts they range over.
    pub params: Vec<(Sym, Sort)>,
    /// The body, over `v` and the parameters.
    pub body: Pred,
}

impl Qualifier {
    /// Creates a qualifier.
    pub fn new(
        name: impl Into<String>,
        vv_sort: Sort,
        params: Vec<(Sym, Sort)>,
        body: Pred,
    ) -> Self {
        Qualifier {
            name: name.into(),
            vv_sort,
            params,
            body,
        }
    }

    /// Enumerates all instantiations of this qualifier over the given scope
    /// (variables with sorts). Parameters are replaced by scope variables of
    /// matching sort; distinct parameters may map to the same variable.
    pub fn instantiate(&self, scope: &[(Sym, Sort)]) -> Vec<Pred> {
        let mut out = Vec::new();
        let mut choice: Vec<usize> = Vec::new();
        self.enumerate(scope, &mut choice, &mut out);
        out
    }

    fn enumerate(&self, scope: &[(Sym, Sort)], choice: &mut Vec<usize>, out: &mut Vec<Pred>) {
        if choice.len() == self.params.len() {
            let mut subst = Subst::new();
            for (i, &c) in choice.iter().enumerate() {
                subst.push(self.params[i].0.clone(), Term::var(scope[c].0.clone()));
            }
            out.push(subst.apply_pred(&self.body));
            return;
        }
        let want = self.params[choice.len()].1;
        for (i, (_, s)) in scope.iter().enumerate() {
            if *s == want {
                choice.push(i);
                self.enumerate(scope, choice, out);
                choice.pop();
            }
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qualif {}(", self.name)?;
        for (i, (x, s)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}: {s}")?;
        }
        write!(f, "): {}", self.body)
    }
}

/// The default qualifier prelude used by the checker, mirroring the
/// prelude the paper's tool ships with: sign bounds, bounds against other
/// variables, and array-length bounds.
pub fn prelude_qualifiers() -> Vec<Qualifier> {
    let v = Term::vv;
    let p = || Term::var("★p");
    let a = || Term::var("★a");
    let mut qs = vec![
        Qualifier::new(
            "Nat",
            Sort::Int,
            vec![],
            Pred::cmp(CmpOp::Le, Term::int(0), v()),
        ),
        Qualifier::new(
            "Pos",
            Sort::Int,
            vec![],
            Pred::cmp(CmpOp::Lt, Term::int(0), v()),
        ),
        Qualifier::new(
            "One",
            Sort::Int,
            vec![],
            Pred::cmp(CmpOp::Le, Term::int(1), v()),
        ),
    ];
    for (name, op) in [
        ("EqVar", CmpOp::Eq),
        ("LtVar", CmpOp::Lt),
        ("LeVar", CmpOp::Le),
        ("GtVar", CmpOp::Gt),
        ("GeVar", CmpOp::Ge),
    ] {
        qs.push(Qualifier::new(
            name,
            Sort::Int,
            vec![(Sym::from("★p"), Sort::Int)],
            Pred::cmp(op, v(), p()),
        ));
    }
    for (name, op) in [
        ("LtLen", CmpOp::Lt),
        ("LeLen", CmpOp::Le),
        ("EqLen", CmpOp::Eq),
    ] {
        qs.push(Qualifier::new(
            name,
            Sort::Int,
            vec![(Sym::from("★a"), Sort::Ref)],
            Pred::cmp(op, v(), Term::len_of(a())),
        ));
    }
    for (name, op) in [("LtLenS", CmpOp::Lt), ("LeLenS", CmpOp::Le)] {
        qs.push(Qualifier::new(
            name,
            Sort::Int,
            vec![(Sym::from("★s"), Sort::Str)],
            Pred::cmp(op, v(), Term::len_of(Term::var("★s"))),
        ));
    }
    qs.push(Qualifier::new(
        "NonEmpty",
        Sort::Ref,
        vec![],
        Pred::cmp(CmpOp::Lt, Term::int(0), Term::len_of(v())),
    ));
    qs.push(Qualifier::new(
        "SameLen",
        Sort::Ref,
        vec![(Sym::from("★a"), Sort::Ref)],
        Pred::cmp(CmpOp::Eq, Term::len_of(v()), Term::len_of(a())),
    ));
    qs.push(Qualifier::new(
        "EqRef",
        Sort::Ref,
        vec![(Sym::from("★p"), Sort::Ref)],
        Pred::cmp(CmpOp::Eq, v(), p()),
    ));
    // Reflection-tag qualifiers (§4.2): discriminate union members.
    for tag in [
        "number",
        "string",
        "boolean",
        "undefined",
        "object",
        "function",
    ] {
        qs.push(Qualifier::new(
            format!("Tag_{tag}"),
            Sort::Ref,
            vec![],
            Pred::cmp(CmpOp::Eq, Term::ttag_of(v()), Term::str(tag)),
        ));
    }
    qs.push(Qualifier::new(
        "NotUndef",
        Sort::Ref,
        vec![],
        Pred::cmp(CmpOp::Ne, v(), Term::app("undefv", vec![])),
    ));
    qs.push(Qualifier::new(
        "NotNull",
        Sort::Ref,
        vec![],
        Pred::cmp(CmpOp::Ne, v(), Term::app("nullv", vec![])),
    ));
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_enumerates_matching_sorts() {
        let q = Qualifier::new(
            "LtLen",
            Sort::Int,
            vec![(Sym::from("★a"), Sort::Ref)],
            Pred::cmp(CmpOp::Lt, Term::vv(), Term::len_of(Term::var("★a"))),
        );
        let scope = vec![
            (Sym::from("a"), Sort::Ref),
            (Sym::from("n"), Sort::Int),
            (Sym::from("b"), Sort::Ref),
        ];
        let insts = q.instantiate(&scope);
        let shown: Vec<String> = insts.iter().map(|p| p.to_string()).collect();
        assert_eq!(shown, vec!["v < len(a)", "v < len(b)"]);
    }

    #[test]
    fn nullary_qualifier_instantiates_once() {
        let q = &prelude_qualifiers()[0];
        assert_eq!(q.instantiate(&[]).len(), 1);
    }

    #[test]
    fn prelude_is_well_sorted() {
        let mut env = crate::SortEnv::new();
        env.declare_fun("nullv", crate::FunSig::Fixed(vec![], Sort::Ref));
        env.declare_fun("undefv", crate::FunSig::Fixed(vec![], Sort::Ref));
        for q in prelude_qualifiers() {
            env.bind("v", q.vv_sort);
            for (x, s) in &q.params {
                env.bind(x.clone(), *s);
            }
            env.check_pred(&q.body)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn two_param_enumeration_counts() {
        let q = Qualifier::new(
            "Between",
            Sort::Int,
            vec![(Sym::from("★p"), Sort::Int), (Sym::from("★q"), Sort::Int)],
            Pred::and(vec![
                Pred::cmp(CmpOp::Le, Term::var("★p"), Term::vv()),
                Pred::cmp(CmpOp::Lt, Term::vv(), Term::var("★q")),
            ]),
        );
        let scope = vec![(Sym::from("x"), Sort::Int), (Sym::from("y"), Sort::Int)];
        assert_eq!(q.instantiate(&scope).len(), 4);
    }
}
