use std::collections::HashMap;
use std::fmt;

use crate::{BinOp, CmpOp, Pred, Sym, Term};

/// Sorts classify logical terms.
///
/// The refinement logic is many-sorted: numbers are integers ([`Sort::Int`],
/// the paper's `number` refinements live in linear integer arithmetic),
/// booleans, string literals (compared only for equality), 32-bit
/// bit-vectors (interface-hierarchy flags, §4.3), and object references
/// (classes, interfaces, arrays and function values all erase to
/// [`Sort::Ref`] in the logic; their structure is exposed through
/// uninterpreted functions such as `len` and field selectors).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Mathematical integers (the sort of `number`).
    Int,
    /// Booleans.
    Bool,
    /// String literals; only equality is interpreted.
    Str,
    /// 32-bit bit-vectors.
    Bv32,
    /// Object references (classes, interfaces, arrays, functions).
    Ref,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "int"),
            Sort::Bool => write!(f, "bool"),
            Sort::Str => write!(f, "str"),
            Sort::Bv32 => write!(f, "bv32"),
            Sort::Ref => write!(f, "ref"),
        }
    }
}

/// The sort signature of an uninterpreted function symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FunSig {
    /// Fixed argument sorts and result sort.
    Fixed(Vec<Sort>, Sort),
    /// A fixed arity but arguments of any sort (e.g. `ttag`), with the
    /// given result sort.
    AnyArgs(usize, Sort),
}

impl FunSig {
    /// The result sort of the signature.
    pub fn result(&self) -> Sort {
        match self {
            FunSig::Fixed(_, r) | FunSig::AnyArgs(_, r) => *r,
        }
    }

    /// The arity of the signature.
    pub fn arity(&self) -> usize {
        match self {
            FunSig::Fixed(args, _) => args.len(),
            FunSig::AnyArgs(n, _) => *n,
        }
    }
}

/// A sorting environment: sorts for variables and signatures for
/// uninterpreted functions.
///
/// A fresh `SortEnv` already knows the built-in symbols of the RSC logic:
/// `len : ref -> int`, `ttag : any -> str`, `impl : (ref, str) -> bool`,
/// `mul : (int, int) -> int` (uninterpreted nonlinear multiplication) and
/// field selectors registered on demand.
#[derive(Clone, Debug, Default)]
pub struct SortEnv {
    vars: HashMap<Sym, Sort>,
    funs: HashMap<Sym, FunSig>,
}

/// An error produced while sorting a term or predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortError(pub String);

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sort error: {}", self.0)
    }
}

impl std::error::Error for SortError {}

impl SortEnv {
    /// Creates a sort environment pre-populated with the built-in
    /// uninterpreted functions of the RSC logic.
    pub fn new() -> Self {
        let mut env = SortEnv::default();
        env.declare_fun("len", FunSig::AnyArgs(1, Sort::Int));
        env.declare_fun("ttag", FunSig::AnyArgs(1, Sort::Str));
        env.declare_fun(
            "impl",
            FunSig::Fixed(vec![Sort::Ref, Sort::Str], Sort::Bool),
        );
        env.declare_fun("mul", FunSig::Fixed(vec![Sort::Int, Sort::Int], Sort::Int));
        env
    }

    /// Binds variable `x` to sort `s` (shadowing any previous binding).
    pub fn bind(&mut self, x: impl Into<Sym>, s: Sort) {
        self.vars.insert(x.into(), s);
    }

    /// Removes the binding for `x`, if any.
    pub fn unbind(&mut self, x: &Sym) {
        self.vars.remove(x);
    }

    /// Looks up the sort of variable `x`.
    pub fn lookup(&self, x: &Sym) -> Option<Sort> {
        self.vars.get(x).copied()
    }

    /// Declares an uninterpreted function symbol.
    pub fn declare_fun(&mut self, f: impl Into<Sym>, sig: FunSig) {
        self.funs.insert(f.into(), sig);
    }

    /// Looks up the signature of function symbol `f`.
    pub fn fun_sig(&self, f: &Sym) -> Option<&FunSig> {
        self.funs.get(f)
    }

    /// Iterates over the bound variables.
    pub fn vars(&self) -> impl Iterator<Item = (&Sym, Sort)> {
        self.vars.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates over the declared uninterpreted functions.
    pub fn funs(&self) -> impl Iterator<Item = (&Sym, &FunSig)> {
        self.funs.iter()
    }

    /// Computes the sort of `t`, or an error if `t` is ill-sorted.
    ///
    /// Field selectors `t.f` are given sort via the registered function
    /// `field$f` when present, defaulting to [`Sort::Int`] otherwise (the
    /// checker registers precise selector sorts for class fields it knows).
    pub fn sort_of(&self, t: &Term) -> Result<Sort, SortError> {
        sort_of_in(self, t)
    }

    /// Checks that predicate `p` is well-sorted (every comparison relates
    /// terms of equal sort, `TermPred` terms are boolean, κ-variable
    /// arguments are sortable).
    pub fn check_pred(&self, p: &Pred) -> Result<(), SortError> {
        check_pred_in(self, p)
    }
}

/// A read-only view of variable sorts and uninterpreted-function
/// signatures, implemented both by the owned [`SortEnv`] and by the
/// borrowed [`SortScope`] overlay. Sorting and encoding are written
/// against this trait so that extending an environment with a handful of
/// binders (a constraint's scope, the canonical `#0, #1, …` binders of a
/// cached query) never requires cloning the whole environment.
pub trait SortLookup {
    /// The sort of variable `x`, if bound.
    fn var_sort(&self, x: &Sym) -> Option<Sort>;
    /// The signature of uninterpreted function `f`, if declared.
    fn sig_of_fun(&self, f: &Sym) -> Option<&FunSig>;
}

impl SortLookup for SortEnv {
    fn var_sort(&self, x: &Sym) -> Option<Sort> {
        self.lookup(x)
    }
    fn sig_of_fun(&self, f: &Sym) -> Option<&FunSig> {
        self.fun_sig(f)
    }
}

/// A borrowed sort environment extension: a base environment plus a
/// binder list layered on top (later binders shadow earlier ones, which
/// shadow the base). Construction is O(1) — no clone of the base — which
/// is what keeps per-constraint scopes and the VC cache's canonical
/// binders off the allocation profile.
#[derive(Clone, Copy)]
pub struct SortScope<'a> {
    base: &'a dyn SortLookup,
    binders: &'a [(Sym, Sort)],
}

impl<'a> SortScope<'a> {
    /// A view of `base` extended with `binders`.
    pub fn new(base: &'a dyn SortLookup, binders: &'a [(Sym, Sort)]) -> Self {
        SortScope { base, binders }
    }

    /// See [`SortEnv::sort_of`].
    pub fn sort_of(&self, t: &Term) -> Result<Sort, SortError> {
        sort_of_in(self, t)
    }

    /// See [`SortEnv::check_pred`].
    pub fn check_pred(&self, p: &Pred) -> Result<(), SortError> {
        check_pred_in(self, p)
    }
}

impl SortLookup for SortScope<'_> {
    fn var_sort(&self, x: &Sym) -> Option<Sort> {
        self.binders
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, s)| *s)
            .or_else(|| self.base.var_sort(x))
    }
    fn sig_of_fun(&self, f: &Sym) -> Option<&FunSig> {
        self.base.sig_of_fun(f)
    }
}

/// [`SortEnv::sort_of`] generalized over any [`SortLookup`].
pub fn sort_of_in(env: &dyn SortLookup, t: &Term) -> Result<Sort, SortError> {
    match t {
        Term::Var(x) => env
            .var_sort(x)
            .ok_or_else(|| SortError(format!("unbound logic variable {x}"))),
        Term::IntLit(_) => Ok(Sort::Int),
        Term::BoolLit(_) => Ok(Sort::Bool),
        Term::StrLit(_) => Ok(Sort::Str),
        Term::BvLit(_) => Ok(Sort::Bv32),
        Term::Field(base, f) => {
            let bs = sort_of_in(env, base)?;
            if bs != Sort::Ref {
                return Err(SortError(format!(
                    "field access {t} on non-reference sort {bs}"
                )));
            }
            let sel = Sym::from(format!("field${f}"));
            Ok(env
                .sig_of_fun(&sel)
                .map(|s| s.result())
                .unwrap_or(Sort::Int))
        }
        Term::App(f, args) => {
            let sig = env
                .sig_of_fun(f)
                .ok_or_else(|| SortError(format!("unknown function symbol {f}")))?
                .clone();
            if sig.arity() != args.len() {
                return Err(SortError(format!(
                    "{f} expects {} arguments, got {}",
                    sig.arity(),
                    args.len()
                )));
            }
            if let FunSig::Fixed(expected, _) = &sig {
                for (a, want) in args.iter().zip(expected) {
                    let got = sort_of_in(env, a)?;
                    if got != *want {
                        return Err(SortError(format!(
                            "argument {a} of {f} has sort {got}, expected {want}"
                        )));
                    }
                }
            } else {
                for a in args {
                    sort_of_in(env, a)?;
                }
            }
            Ok(sig.result())
        }
        Term::Bin(op, a, b) => {
            let sa = sort_of_in(env, a)?;
            let sb = sort_of_in(env, b)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    if sa == Sort::Int && sb == Sort::Int {
                        Ok(Sort::Int)
                    } else {
                        Err(SortError(format!("arithmetic {t} on sorts {sa}, {sb}")))
                    }
                }
                BinOp::BvAnd | BinOp::BvOr => {
                    if sa == Sort::Bv32 && sb == Sort::Bv32 {
                        Ok(Sort::Bv32)
                    } else {
                        Err(SortError(format!("bit-vector op {t} on sorts {sa}, {sb}")))
                    }
                }
            }
        }
        Term::Neg(a) => {
            let sa = sort_of_in(env, a)?;
            if sa == Sort::Int {
                Ok(Sort::Int)
            } else {
                Err(SortError(format!("negation of sort {sa}")))
            }
        }
    }
}

/// [`SortEnv::check_pred`] generalized over any [`SortLookup`].
pub fn check_pred_in(env: &dyn SortLookup, p: &Pred) -> Result<(), SortError> {
    match p {
        Pred::True | Pred::False => Ok(()),
        Pred::And(ps) | Pred::Or(ps) => ps.iter().try_for_each(|q| check_pred_in(env, q)),
        Pred::Not(q) => check_pred_in(env, q),
        Pred::Imp(a, b) | Pred::Iff(a, b) => {
            check_pred_in(env, a)?;
            check_pred_in(env, b)
        }
        Pred::Cmp(op, a, b) => {
            let sa = sort_of_in(env, a)?;
            let sb = sort_of_in(env, b)?;
            if sa != sb {
                return Err(SortError(format!(
                    "comparison {p} relates sorts {sa} and {sb}"
                )));
            }
            match op {
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    if sa == Sort::Int {
                        Ok(())
                    } else {
                        Err(SortError(format!("ordering {p} on sort {sa}")))
                    }
                }
                CmpOp::Eq | CmpOp::Ne => Ok(()),
            }
        }
        Pred::App(f, args) => {
            let sig = env
                .sig_of_fun(f)
                .ok_or_else(|| SortError(format!("unknown predicate symbol {f}")))?;
            if sig.result() != Sort::Bool {
                return Err(SortError(format!("{f} is not a predicate symbol")));
            }
            if sig.arity() != args.len() {
                return Err(SortError(format!("{f} arity mismatch")));
            }
            for a in args {
                sort_of_in(env, a)?;
            }
            Ok(())
        }
        Pred::TermPred(t) => {
            let s = sort_of_in(env, t)?;
            if s == Sort::Bool {
                Ok(())
            } else {
                Err(SortError(format!("truthiness of non-boolean term {t}")))
            }
        }
        Pred::KVar(_, subst) => {
            for (_, t) in subst.iter() {
                sort_of_in(env, t)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.bind("a", Sort::Ref);
        e.bind("v", Sort::Int);
        e.bind("b", Sort::Bool);
        e
    }

    #[test]
    fn sorts_of_builtins() {
        let e = env();
        let len_a = Term::app("len", vec![Term::var("a")]);
        assert_eq!(e.sort_of(&len_a).unwrap(), Sort::Int);
        let tt = Term::app("ttag", vec![Term::var("v")]);
        assert_eq!(e.sort_of(&tt).unwrap(), Sort::Str);
    }

    #[test]
    fn ill_sorted_comparison_rejected() {
        let e = env();
        let p = Pred::cmp(CmpOp::Eq, Term::var("v"), Term::str("number"));
        assert!(e.check_pred(&p).is_err());
        let q = Pred::cmp(
            CmpOp::Eq,
            Term::app("ttag", vec![Term::var("v")]),
            Term::str("number"),
        );
        assert!(e.check_pred(&q).is_ok());
    }

    #[test]
    fn unbound_variable_is_error() {
        let e = env();
        assert!(e.sort_of(&Term::var("nope")).is_err());
    }

    #[test]
    fn bitvector_ops() {
        let mut e = env();
        e.bind("flags", Sort::Bv32);
        let t = Term::bin(BinOp::BvAnd, Term::var("flags"), Term::bv(0x3c00));
        assert_eq!(e.sort_of(&t).unwrap(), Sort::Bv32);
        let p = Pred::cmp(CmpOp::Ne, t, Term::bv(0));
        assert!(e.check_pred(&p).is_ok());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = env();
        let t = Term::app("len", vec![Term::var("a"), Term::var("a")]);
        assert!(e.sort_of(&t).is_err());
    }

    #[test]
    fn truthiness_requires_bool() {
        let e = env();
        assert!(e.check_pred(&Pred::TermPred(Term::var("b"))).is_ok());
        assert!(e.check_pred(&Pred::TermPred(Term::var("v"))).is_err());
    }
}
