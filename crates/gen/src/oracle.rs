//! The differential oracles: each takes generated input and returns
//! `Err(description)` on a violation — a real checker/toolchain bug by
//! construction, since generated programs are well-typed and mutants
//! break exactly one known obligation.

use rsc_core::{check_program, check_program_ast, CheckResult, CheckerOptions};
use rsc_incr::{qualified_program, resolve_closure, CheckSession, Merged, Workspace};
use rsc_interp::{run_frsc, run_irsc};

use crate::generate::GenProgram;
use crate::mutate::Mutation;

/// Interpreter fuel for the soundness oracle (generated programs are
/// cost-budgeted far below this).
const FUEL: u64 = 5_000_000;

/// Renders a result's diagnostics the way every suite pins them.
pub fn render(r: &CheckResult) -> String {
    r.diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn opts_with_jobs(jobs: usize) -> CheckerOptions {
    CheckerOptions {
        jobs,
        ..CheckerOptions::default()
    }
}

/// **Soundness**: a generated (well-typed-by-construction) program must
/// verify, and then run to the same value on both semantics with no
/// runtime error (Theorems 2–5 of the paper, exercised adversarially).
pub fn soundness(src: &str) -> Result<(), String> {
    let r = check_program(src, CheckerOptions::default());
    if !r.ok() {
        return Err(format!(
            "generated well-typed program was rejected:\n{}",
            render(&r)
        ));
    }
    let prog = rsc_syntax::parse_program(src).map_err(|e| format!("parse failed: {e:?}"))?;
    let ir = rsc_ssa::transform_program(&prog).map_err(|e| format!("SSA failed: {e:?}"))?;
    let a = run_frsc(&prog, FUEL);
    let b = run_irsc(&ir, FUEL);
    if a != b {
        return Err(format!("semantics disagree: frsc {a:?} vs irsc {b:?}"));
    }
    match a {
        Ok(_) => Ok(()),
        Err(e) => Err(format!("verified program hit a runtime error: {e}")),
    }
}

/// The pretty-printer round trip: print ∘ parse is idempotent on every
/// generated program (guards the printer the workspace emitter relies
/// on).
pub fn pretty_roundtrip(src: &str) -> Result<(), String> {
    let p1 = rsc_syntax::parse_program(src).map_err(|e| format!("parse failed: {e:?}"))?;
    let printed = rsc_syntax::pretty::program(&p1);
    let p2 = rsc_syntax::parse_program(&printed)
        .map_err(|e| format!("pretty output does not re-parse: {e:?}\n{printed}"))?;
    let printed2 = rsc_syntax::pretty::program(&p2);
    if printed != printed2 {
        return Err("pretty-print is not idempotent".to_string());
    }
    Ok(())
}

/// **Determinism**: diagnostics are byte-identical across worker
/// counts (`jobs=1` vs `jobs=N`).
pub fn determinism(src: &str, jobs: usize) -> Result<(), String> {
    let seq = check_program(src, opts_with_jobs(1));
    let par = check_program(src, opts_with_jobs(jobs.max(2)));
    let (a, b) = (render(&seq), render(&par));
    if a != b {
        return Err(format!(
            "diagnostics differ between jobs=1 and jobs={}:\n--- jobs=1\n{a}\n--- jobs=N\n{b}",
            jobs.max(2)
        ));
    }
    Ok(())
}

/// **Mutation rejection**: the mutant must be rejected, some diagnostic
/// must carry the mutation's obligation code, and every diagnostic
/// carrying it must sit at/after the insertion line.
pub fn mutant_rejected(base: &GenProgram, m: &Mutation) -> Result<(), String> {
    let (src, line) = base.text_with_insert(&m.text);
    let r = check_program(&src, CheckerOptions::default());
    if r.ok() {
        return Err(format!(
            "mutant `{}` ({}) was accepted:\n{src}",
            m.label,
            m.kind.code()
        ));
    }
    let hits: Vec<_> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == Some(m.kind.code()))
        .collect();
    if hits.is_empty() {
        return Err(format!(
            "mutant `{}` rejected without expected code {}:\n{}",
            m.label,
            m.kind.code(),
            render(&r)
        ));
    }
    for d in hits {
        if d.span.line < line {
            return Err(format!(
                "mutant `{}`: {} diagnostic at line {} precedes the mutated \
                 region (line {})",
                m.label,
                m.kind.code(),
                d.span.line,
                line
            ));
        }
    }
    Ok(())
}

/// **Absint equivalence**: the abstract-interpretation pre-pass may
/// only *discharge* SMT queries, never change answers. With the
/// pre-pass on and off: diagnostics are byte-identical, the verdict is
/// the same, the off run discharges nothing, and the on run's
/// `smt_queries + obligations_discharged` equals the off run's
/// `smt_queries` — i.e. every skipped query is one the solver would
/// have answered `Valid` (a discharged query that SMT would refute
/// necessarily changes the fixpoint trajectory and with it the
/// accounting or the diagnostics, so this equation is the replay
/// contract in differential form).
pub fn absint(src: &str) -> Result<(), String> {
    let on = check_program(src, CheckerOptions::default());
    let off = check_program(
        src,
        CheckerOptions {
            absint: false,
            ..CheckerOptions::default()
        },
    );
    let (a, b) = (render(&on), render(&off));
    if a != b {
        return Err(format!(
            "diagnostics differ with the absint pre-pass on vs off:\n--- on\n{a}\n--- off\n{b}"
        ));
    }
    if on.ok() != off.ok() {
        return Err(format!(
            "verdict differs with the absint pre-pass: on={} off={}",
            on.ok(),
            off.ok()
        ));
    }
    if off.stats.obligations_discharged != 0 {
        return Err(format!(
            "pre-pass disabled but {} obligations were discharged",
            off.stats.obligations_discharged
        ));
    }
    let attempted = on.stats.smt_queries + on.stats.obligations_discharged;
    if attempted != off.stats.smt_queries {
        return Err(format!(
            "query accounting broken: on ({} queries + {} discharged = {attempted}) \
             vs off ({} queries) — the pre-pass changed the fixpoint trajectory",
            on.stats.smt_queries, on.stats.obligations_discharged, off.stats.smt_queries
        ));
    }
    Ok(())
}

/// **Incremental equivalence**: replaying an edit script through a
/// persistent [`CheckSession`] produces, at every step, diagnostics
/// byte-identical to a cold `check_program` of that step.
pub fn incremental(steps: &[String]) -> Result<(), String> {
    let mut session = CheckSession::new(CheckerOptions::default());
    for (i, outcome) in session
        .replay_script(steps.iter().map(String::as_str))
        .into_iter()
        .enumerate()
    {
        let cold = check_program(&steps[i], CheckerOptions::default());
        let (s, c) = (render(&outcome.result), render(&cold));
        if s != c {
            return Err(format!(
                "incremental step {i} diverged from cold check:\n--- session\n{s}\n--- cold\n{c}"
            ));
        }
    }
    Ok(())
}

/// **Workspace-merge equivalence**: checking a generated multi-file
/// import closure through the [`Workspace`] is byte-identical to a
/// cold check of its **module-qualified** merged program, the merged
/// text *is* the concatenation of the closure files in topological
/// order, and the closure verifies — which fails if any module's
/// non-exported `sharedHelper` captures another module's (every file
/// declares one, with a file-specific refinement).
pub fn workspace_merge(files: &[(String, String)], root: &str) -> Result<(), String> {
    let mut ws = Workspace::new(CheckerOptions::default());
    for (name, text) in files {
        if name != root {
            ws.check_one(name, text.clone());
        }
    }
    let root_text = files
        .iter()
        .find(|(n, _)| n == root)
        .ok_or_else(|| "root file missing from file set".to_string())?
        .1
        .clone();
    let report = ws.check_one(root, root_text);
    if report.merged.files.len() != files.len() {
        return Err(format!(
            "closure of `{root}` has {} files, expected {}: {:?}",
            report.merged.files.len(),
            files.len(),
            report
                .merged
                .files
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
        ));
    }
    // The merged text must be exactly the concatenation of the closure
    // files (newline-terminated) in the workspace's topological order.
    let concat: String = report
        .merged
        .files
        .iter()
        .map(|f| {
            let t = &files
                .iter()
                .find(|(n, _)| n == &f.name)
                .expect("closure file")
                .1;
            if t.ends_with('\n') {
                t.clone()
            } else {
                format!("{t}\n")
            }
        })
        .collect();
    if concat != report.merged.text {
        return Err(format!(
            "merged text is not the closure concatenation for `{root}`"
        ));
    }
    // The cold side of the equivalence is the qualified merged program
    // — the semantics the workspace is defined to implement.
    let mut lookup = |name: &str| {
        files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
    };
    let closure = resolve_closure(root, &mut lookup)
        .map_err(|e| format!("cold resolution of `{root}` failed: {e:?}"))?;
    let merged = Merged::build(&closure);
    let prog = qualified_program(&merged, &closure)
        .map_err(|e| format!("qualification of `{root}` failed: {e:?}"))?;
    let cold = check_program_ast(&prog, CheckerOptions::default());
    let (w, c) = (render(&report.outcome.result), render(&cold));
    if w != c {
        return Err(format!(
            "workspace check of `{root}` diverged from its qualified merge:\n\
             --- workspace\n{w}\n--- qualified\n{c}"
        ));
    }
    if !cold.ok() {
        return Err(format!(
            "generated workspace does not verify:\n{c}\n--- merged program\n{}",
            report.merged.text
        ));
    }
    Ok(())
}
