//! Mutation mode: break exactly one refinement obligation.
//!
//! Each template is a small item block appended between a generated
//! program's declarations and its final top-level `return` (names are
//! suffixed so nothing collides with generated code). The rest of the
//! program stays verified, so the checker must reject the mutant with
//! the template's obligation code — and the diagnostic must land at or
//! after the insertion line ([`crate::generate::GenProgram::text_with_insert`]
//! returns it). One template exists for every reachable obligation
//! kind `R0001`–`R0013`; `R0099` (`Other`) is synthetic-only.
//!
//! Template shapes deliberately mirror the canonical rejection
//! fixtures in `tests/blame_kinds.rs`, which pins their diagnostics
//! against goldens — so a fuzz failure here means the checker drifted
//! from behavior the unit suite also pins.

use rsc_core::ObligationKind;

use crate::generate::{GenProgram, Ty};

/// One single-obligation-breaking mutation.
#[derive(Clone, Debug)]
pub struct Mutation {
    /// The obligation kind the mutant must be rejected with.
    pub kind: ObligationKind,
    /// The item block to insert before the program's final return.
    pub text: String,
    /// Short human label for failure reports.
    pub label: &'static str,
}

/// All standalone templates, with `s` suffixed onto every introduced
/// name. `nat`/`pos` refer to the generated preamble's aliases, so the
/// caller passes the program's alias names.
pub fn templates(s: &str, nat: &str, pos: &str) -> Vec<Mutation> {
    let _ = pos;
    vec![
        Mutation {
            kind: ObligationKind::CallArgument,
            label: "negative into nat parameter",
            text: format!(
                "function mh{s}(x: {nat}): {nat} {{ return x; }}\n\
                 function mc{s}(): {nat} {{ return mh{s}(0 - 1); }}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::Return,
            label: "nat - 1 returned as nat",
            text: format!("function mr{s}(x: {nat}): {nat} {{\n    return x - 1;\n}}\n"),
        },
        Mutation {
            kind: ObligationKind::Assignment,
            label: "negative into annotated nat local",
            text: format!("function ma{s}(): void {{\n    var y: {nat} = 0 - 5;\n}}\n"),
        },
        Mutation {
            kind: ObligationKind::Narrowing,
            label: "method call through possible null",
            text: format!(
                "class MN{s} {{ x : number; constructor(x: number) {{ this.x = x; }}\n    \
                 @ReadOnly get(): number {{ return this.x; }} }}\n\
                 function mn{s}(p: MN{s} + null): number {{\n    return p.get();\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::LoopInvariant,
            label: "string assigned to number loop variable",
            text: format!(
                "function ml{s}(): number {{\n    var i = 0;\n    \
                 while (i < 3) {{ i = \"s\"; }}\n    return i;\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::FieldRead,
            label: "field read through possible null",
            text: format!(
                "class MQ{s} {{ x : number; constructor(x: number) {{ this.x = x; }} }}\n\
                 function mq{s}(p: MQ{s} + null): number {{\n    return p.x;\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::FieldWrite,
            label: "plain number into nat field",
            text: format!(
                "class MW{s} {{\n    n : {nat};\n    \
                 constructor(n: {nat}) {{ this.n = n; }}\n    \
                 @Mutable poke(x: number) {{ this.n = x; }}\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::ArrayBounds,
            label: "read at a[a.length]",
            text: format!("function mb{s}(a: number[]): number {{\n    return a[a.length];\n}}\n"),
        },
        Mutation {
            kind: ObligationKind::Cast,
            label: "unprovable downcast",
            text: format!(
                "class MA{s} {{ x : number; constructor(x: number) {{ this.x = x; }} }}\n\
                 class MB{s} extends MA{s} {{ y : number; \
                 constructor(x: number, y: number) {{\n    \
                 this.x = x; this.y = y; }} }}\n\
                 function md{s}(a: MA{s}): number {{\n    \
                 var b = <MB{s}> a;\n    return b.y;\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::ClassInvariant,
            label: "number into immutable nat field at constructor exit",
            text: format!(
                "class MI{s} {{\n    immutable n : {nat};\n    \
                 constructor(v: number) {{ this.n = v; }}\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::Assertion,
            label: "unprovable assert",
            text: format!("function ms{s}(x: number): void {{\n    assert(0 < x);\n}}\n"),
        },
        Mutation {
            kind: ObligationKind::Arithmetic,
            label: "division by possibly-zero number",
            text: format!(
                "function mz{s}(x: number, y: number): number {{\n    return x / y;\n}}\n"
            ),
        },
        Mutation {
            kind: ObligationKind::BaseType,
            label: "number + string",
            text: format!("function mt{s}(str: string): number {{\n    return 1 + str;\n}}\n"),
        },
    ]
}

/// A mutation coupled to the generated program itself: call an existing
/// generated function with an argument that violates its declared
/// parameter refinement (guaranteed `R0001` — the refutation is
/// definite, not a completeness gamble). Returns `None` when no
/// function takes a `nat`/`pos` parameter.
pub fn coupled(p: &GenProgram, s: &str) -> Option<Mutation> {
    let (f, slot) = p.funs.iter().find_map(|f| {
        f.params
            .iter()
            .position(|(_, t)| matches!(t, Ty::Nat | Ty::Pos))
            .map(|i| (f, i))
    })?;
    let args: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, (_, t))| {
            if i == slot {
                "(0 - 1)".to_string()
            } else {
                match t {
                    Ty::Pos => "1".to_string(),
                    Ty::Nat | Ty::Num => "0".to_string(),
                    Ty::Bool => "true".to_string(),
                    Ty::Arr => "[1, 2]".to_string(),
                }
            }
        })
        .collect();
    Some(Mutation {
        kind: ObligationKind::CallArgument,
        label: "negative into generated function's nat/pos parameter",
        text: format!("var mg{s} = {}({});\n", f.name, args.join(", ")),
    })
}
