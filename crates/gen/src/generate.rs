//! The typing-rule-directed program generator.
//!
//! Programs are *well-refinement-typed by construction*: every
//! expression is generated against a target type by rules that mirror
//! the checker's subtyping lattice (`pos <: nat <: number`), so the
//! checker must verify the output — a rejection is a completeness bug
//! in the checker or a soundness bug in a generation rule, and either
//! way the fuzz oracle reports it.
//!
//! Two properties are maintained beyond well-typedness:
//!
//! * **Bounded magnitudes.** Every expression carries a static bound on
//!   the absolute value it can evaluate to ([`CAP`]); call arguments
//!   are capped tighter ([`ARG_CAP`]) so values cannot grow across the
//!   (stratified, acyclic) call graph. The interpreters use wrapping
//!   i64 arithmetic while the checker reasons in unbounded integers, so
//!   an overflow would make the dynamic-soundness oracle report a false
//!   positive; the bounds keep every run far inside i64.
//! * **Bounded running time.** Calls only target previously generated
//!   functions and each function's dynamic cost estimate is tracked;
//!   call sites are only emitted while the cost stays under a budget,
//!   so generated programs always terminate quickly within the
//!   interpreter fuel used by the soundness oracle.

use proptest::test_runner::TestRng;

/// Cap on the static magnitude bound of any generated expression.
pub const CAP: i64 = 1 << 38;
/// Tighter cap for call arguments (function parameters assume it).
pub const ARG_CAP: i64 = 1 << 20;
/// Dynamic cost budget for one function (estimated interpreter steps).
const COST_BUDGET: u64 = 100_000;

/// The generator's type universe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// `pos` — `{v: number | 0 < v}`.
    Pos,
    /// `nat` — `{v: number | 0 <= v}`.
    Nat,
    /// Plain `number`.
    Num,
    /// `boolean`.
    Bool,
    /// `number[]`.
    Arr,
}

impl Ty {
    /// The type annotation as written in generated source.
    pub fn ann(self) -> &'static str {
        match self {
            Ty::Pos => "pos",
            Ty::Nat => "nat",
            Ty::Num => "number",
            Ty::Bool => "boolean",
            Ty::Arr => "number[]",
        }
    }

    /// True when a value of `self` can flow where `want` is expected
    /// (the generator's subtyping lattice: `pos <: nat <: number`).
    fn flows_to(self, want: Ty) -> bool {
        self == want
            || matches!(
                (self, want),
                (Ty::Pos, Ty::Nat) | (Ty::Pos, Ty::Num) | (Ty::Nat, Ty::Num)
            )
    }

    /// True for scalar numeric types.
    pub fn numeric(self) -> bool {
        matches!(self, Ty::Pos | Ty::Nat | Ty::Num)
    }
}

/// One variable in scope during generation.
#[derive(Clone, Debug)]
struct Var {
    name: String,
    ty: Ty,
    /// Static magnitude bound (for `Arr`: bound on the length).
    bound: i64,
    /// Carries a checked refinement (parameter or annotated local) —
    /// required where the *declared* type must prove an obligation on
    /// its own, e.g. a division's nonzero side condition.
    refined: bool,
}

/// One generated function.
#[derive(Clone, Debug)]
pub struct GenFun {
    /// Function name (`fn3`, or `fn3_c1` inside workspace cluster 1).
    pub name: String,
    /// Parameters with their generator types.
    pub params: Vec<(String, Ty)>,
    /// Declared return type.
    pub ret: Ty,
    /// The rendered `function … { … }` item, newline-terminated.
    pub text: String,
    /// Indices (into [`GenProgram::funs`]) of called functions.
    pub calls: Vec<usize>,
    /// Estimated dynamic cost (interpreter steps) of one invocation.
    pub cost: u64,
    /// Static magnitude bound of the returned value.
    pub ret_bound: i64,
}

/// A generated program: alias preamble, stratified functions, and a
/// final top-level `return`.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// `type nat = …; type pos = …;` (suffixed inside clusters).
    pub preamble: String,
    /// Functions in generation (stratified) order.
    pub funs: Vec<GenFun>,
    /// The top-level `return …;` line driving the interpreters.
    pub tail: String,
    /// Indices of the functions the tail calls.
    pub tail_calls: Vec<usize>,
}

impl GenProgram {
    /// The complete single-file program text.
    pub fn text(&self) -> String {
        let mut out = self.decls_text();
        out.push_str(&self.tail);
        out
    }

    /// Everything except the final top-level return.
    pub fn decls_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&self.preamble);
        for f in &self.funs {
            out.push_str(&f.text);
        }
        out
    }

    /// The program with `extra` inserted between the declarations and
    /// the final return, plus the 1-based line number of the first
    /// inserted line (where a mutation's diagnostics must land).
    pub fn text_with_insert(&self, extra: &str) -> (String, u32) {
        let decls = self.decls_text();
        let line = decls.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let mut out = decls;
        out.push_str(extra);
        out.push_str(&self.tail);
        (out, line)
    }
}

/// Size/shape knobs for one generated program.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of functions to generate.
    pub funs: usize,
    /// Name suffix discriminator for workspace clusters (`None` for
    /// plain single-program generation).
    pub cluster: Option<usize>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            funs: 8,
            cluster: None,
        }
    }
}

/// Generates one well-typed-by-construction program.
pub fn generate(rng: &mut TestRng, cfg: GenConfig) -> GenProgram {
    Gen {
        rng,
        suffix: cfg.cluster.map(|c| format!("_c{c}")).unwrap_or_default(),
        funs: Vec::new(),
        fresh: 0,
    }
    .program(cfg.funs.max(1))
}

struct Gen<'a> {
    rng: &'a mut TestRng,
    suffix: String,
    funs: Vec<GenFun>,
    fresh: usize,
}

impl Gen<'_> {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// True with probability `num`/`den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}{}", self.fresh, self.suffix)
    }

    /// The alias names, suffixed per cluster so workspace clusters can
    /// coexist in one merged namespace.
    fn nat(&self) -> String {
        format!("nat{}", self.suffix)
    }
    fn pos(&self) -> String {
        format!("pos{}", self.suffix)
    }

    fn ann(&self, ty: Ty) -> String {
        match ty {
            Ty::Pos => self.pos(),
            Ty::Nat => self.nat(),
            _ => ty.ann().to_string(),
        }
    }

    fn program(mut self, n: usize) -> GenProgram {
        let preamble = format!(
            "type {} = {{v: number | 0 <= v}};\ntype {} = {{v: number | 0 < v}};\n",
            self.nat(),
            self.pos()
        );
        for i in 0..n {
            let f = self.fun(i);
            self.funs.push(f);
        }
        let (tail, tail_calls) = self.tail();
        GenProgram {
            preamble,
            funs: self.funs,
            tail,
            tail_calls,
        }
    }

    // ---------------------------------------------------------- atoms ---

    /// A leaf expression of type `ty` with its magnitude bound.
    /// `refined_only` restricts variable atoms to refinement-carrying
    /// ones (division side conditions must be provable from declared
    /// types alone).
    fn atom(&mut self, ty: Ty, ctx: &[Var], refined_only: bool) -> (String, i64) {
        let vars: Vec<&Var> = ctx
            .iter()
            .filter(|v| v.ty.flows_to(ty) && (!refined_only || v.refined))
            .collect();
        if !vars.is_empty() && self.chance(3, 5) {
            let v = vars[self.below(vars.len() as u64) as usize];
            return (v.name.clone(), v.bound);
        }
        match ty {
            Ty::Pos => {
                let k = 1 + self.below(9) as i64;
                (k.to_string(), k)
            }
            Ty::Nat => {
                // `a.length` is a nat the checker knows exactly.
                let arrs: Vec<&Var> = ctx.iter().filter(|v| v.ty == Ty::Arr).collect();
                if !arrs.is_empty() && !refined_only && self.chance(1, 4) {
                    let a = arrs[self.below(arrs.len() as u64) as usize];
                    return (format!("{}.length", a.name), a.bound);
                }
                let k = self.below(10) as i64;
                (k.to_string(), k)
            }
            Ty::Num => {
                let k = self.below(19) as i64 - 9;
                if k < 0 {
                    // The lexer has no negative literals; spell it as a
                    // subtraction like the corpus does.
                    (format!("(0 - {})", -k), -k)
                } else {
                    (k.to_string(), k)
                }
            }
            Ty::Bool => (
                if self.chance(1, 2) { "true" } else { "false" }.to_string(),
                1,
            ),
            Ty::Arr => {
                let len = 2 + self.below(3);
                let elems: Vec<String> = (0..len).map(|_| self.below(10).to_string()).collect();
                (format!("[{}]", elems.join(", ")), len as i64)
            }
        }
    }

    // ---------------------------------------------------- expressions ---

    /// A compound expression of type `ty`, depth-bounded, with its
    /// magnitude bound kept under [`CAP`].
    fn expr(&mut self, ty: Ty, ctx: &[Var], depth: u32) -> (String, i64) {
        if depth == 0 || self.chance(1, 3) {
            return self.atom(ty, ctx, false);
        }
        let (s, b) = match ty {
            Ty::Pos => match self.below(2) {
                // pos + nat is pos; pos * k (k ≥ 1 literal) is pos.
                0 => {
                    let (a, ba) = self.expr(Ty::Pos, ctx, depth - 1);
                    let (c, bc) = self.expr(Ty::Nat, ctx, depth - 1);
                    (format!("({a} + {c})"), ba.saturating_add(bc))
                }
                _ => {
                    let (a, ba) = self.expr(Ty::Pos, ctx, depth - 1);
                    let k = 2 + self.below(2) as i64;
                    (format!("({a} * {k})"), ba.saturating_mul(k))
                }
            },
            Ty::Nat => match self.below(3) {
                0 => return self.expr(Ty::Pos, ctx, depth - 1),
                1 => {
                    let (a, ba) = self.expr(Ty::Nat, ctx, depth - 1);
                    let (c, bc) = self.expr(Ty::Nat, ctx, depth - 1);
                    (format!("({a} + {c})"), ba.saturating_add(bc))
                }
                _ => {
                    let (a, ba) = self.expr(Ty::Nat, ctx, depth - 1);
                    let k = 2 + self.below(2) as i64;
                    (format!("({a} * {k})"), ba.saturating_mul(k))
                }
            },
            Ty::Num => match self.below(5) {
                0 => return self.expr(Ty::Nat, ctx, depth - 1),
                1 | 2 => {
                    let op = if self.chance(1, 2) { "+" } else { "-" };
                    let (a, ba) = self.expr(Ty::Num, ctx, depth - 1);
                    let (c, bc) = self.expr(Ty::Num, ctx, depth - 1);
                    (format!("({a} {op} {c})"), ba.saturating_add(bc))
                }
                3 => {
                    let (a, ba) = self.expr(Ty::Num, ctx, depth - 1);
                    let k = 2 + self.below(2) as i64;
                    (format!("({a} * {k})"), ba.saturating_mul(k))
                }
                _ => {
                    // Division's R0012 side condition: the divisor must
                    // be provably nonzero from declared refinements, so
                    // it is a pos literal / parameter / annotated local.
                    let (a, ba) = self.expr(Ty::Num, ctx, depth - 1);
                    let (d, _) = self.atom(Ty::Pos, ctx, true);
                    (format!("({a} / {d})"), ba)
                }
            },
            Ty::Bool => {
                let op = if self.chance(1, 2) { "<" } else { "<=" };
                let (a, _) = self.expr(Ty::Num, ctx, depth - 1);
                let (c, _) = self.expr(Ty::Num, ctx, depth - 1);
                (format!("({a} {op} {c})"), 1)
            }
            Ty::Arr => return self.atom(Ty::Arr, ctx, false),
        };
        if b > CAP {
            return self.atom(ty, ctx, false);
        }
        (s, b)
    }

    /// A call-argument expression for a parameter of type `ty`: bounded
    /// by [`ARG_CAP`] (falls back to a literal-ish atom otherwise).
    fn arg(&mut self, ty: Ty, ctx: &[Var]) -> String {
        for _ in 0..3 {
            let (s, b) = self.expr(ty, ctx, 1);
            if b <= ARG_CAP {
                return s;
            }
        }
        match ty {
            Ty::Pos => (1 + self.below(9)).to_string(),
            Ty::Nat | Ty::Num => self.below(10).to_string(),
            Ty::Bool => "true".to_string(),
            Ty::Arr => self.atom(Ty::Arr, &[], false).0,
        }
    }

    // ------------------------------------------------------ functions ---

    fn fun(&mut self, i: usize) -> GenFun {
        let name = format!("fn{i}{}", self.suffix);
        let nparams = self.below(4) as usize;
        let mut params = Vec::new();
        let mut ctx: Vec<Var> = Vec::new();
        for _ in 0..nparams {
            let ty = match self.below(8) {
                0 | 1 => Ty::Nat,
                2 => Ty::Pos,
                3 | 4 => Ty::Num,
                5 => Ty::Arr,
                _ => Ty::Num,
            };
            let pname = self.fresh("p");
            ctx.push(Var {
                name: pname.clone(),
                ty,
                bound: if ty == Ty::Arr { 9 } else { ARG_CAP },
                refined: true,
            });
            params.push((pname, ty));
        }
        let ret = match self.below(8) {
            0 | 1 => Ty::Nat,
            2 => Ty::Pos,
            3 => Ty::Bool,
            _ => Ty::Num,
        };

        let mut body = String::new();
        let mut cost: u64 = 5;
        let mut calls = Vec::new();

        // Local declarations, some annotated (exercising R0003's
        // provable side and giving division refined divisors).
        for _ in 0..=self.below(3) {
            let x = self.fresh("x");
            match self.below(6) {
                0 => {
                    let (e, b) = self.expr(Ty::Nat, &ctx, 2);
                    body.push_str(&format!("    var {x}: {} = {e};\n", self.nat()));
                    ctx.push(Var {
                        name: x,
                        ty: Ty::Nat,
                        bound: b,
                        refined: true,
                    });
                }
                1 => {
                    let (e, b) = self.expr(Ty::Pos, &ctx, 2);
                    body.push_str(&format!("    var {x}: {} = {e};\n", self.pos()));
                    ctx.push(Var {
                        name: x,
                        ty: Ty::Pos,
                        bound: b,
                        refined: true,
                    });
                }
                2 => {
                    let (e, b) = self.atom(Ty::Arr, &ctx, false);
                    // `new Array(k)` builds a zero-filled length-k
                    // buffer; the checker tracks its exact length.
                    let (init, blen) = if self.chance(1, 2) {
                        let k = 1 + self.below(8) as i64;
                        (format!("new Array({k})"), k)
                    } else {
                        (e, b)
                    };
                    body.push_str(&format!("    var {x} = {init};\n"));
                    ctx.push(Var {
                        name: x,
                        ty: Ty::Arr,
                        bound: blen,
                        refined: false,
                    });
                }
                _ => {
                    let (e, b) = self.expr(Ty::Num, &ctx, 2);
                    body.push_str(&format!("    var {x} = {e};\n"));
                    ctx.push(Var {
                        name: x,
                        ty: Ty::Num,
                        bound: b,
                        refined: false,
                    });
                }
            }
        }

        // Call statements targeting earlier (already generated)
        // functions, budgeted by dynamic cost.
        for _ in 0..self.below(3) {
            let candidates: Vec<usize> = (0..self.funs.len())
                .filter(|&j| self.funs[j].ret != Ty::Arr && cost + self.funs[j].cost < COST_BUDGET)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let j = candidates[self.below(candidates.len() as u64) as usize];
            let target = self.funs[j].clone();
            let args: Vec<String> = target
                .params
                .iter()
                .map(|(_, ty)| self.arg(*ty, &ctx))
                .collect();
            let c = self.fresh("c");
            body.push_str(&format!(
                "    var {c} = {}({});\n",
                target.name,
                args.join(", ")
            ));
            ctx.push(Var {
                name: c,
                ty: target.ret,
                // Declared return refinements are checked, so the call
                // result is as good as an annotated local.
                refined: true,
                bound: target.ret_bound,
            });
            cost += target.cost;
            calls.push(j);
        }

        // A conditional reassignment of an unannotated number local
        // (exercises SSA joins and loop-free kvar inference).
        let plain_nums: Vec<String> = ctx
            .iter()
            .filter(|v| v.ty == Ty::Num && !v.refined)
            .map(|v| v.name.clone())
            .collect();
        if !plain_nums.is_empty() && self.chance(1, 2) {
            let t = plain_nums[self.below(plain_nums.len() as u64) as usize].clone();
            let (cond, _) = self.expr(Ty::Bool, &ctx, 2);
            let (e, b) = self.expr(Ty::Num, &ctx, 2);
            body.push_str(&format!("    if ({cond}) {{ {t} = {e}; }}\n"));
            if let Some(v) = ctx.iter_mut().find(|v| v.name == t) {
                v.bound = v.bound.max(b);
            }
        }

        // The corpus-proven loop idioms over an array in scope: a
        // reduction (`s = s + a[i]`) or an in-bounds write-back.
        let arrs: Vec<Var> = ctx.iter().filter(|v| v.ty == Ty::Arr).cloned().collect();
        if !arrs.is_empty() && self.chance(2, 3) {
            let a = arrs[self.below(arrs.len() as u64) as usize].clone();
            let i_var = self.fresh("i");
            if self.chance(1, 2) {
                let s = self.fresh("s");
                body.push_str(&format!(
                    "    var {s} = 0;\n    var {i_var};\n    \
                     for ({i_var} = 0; {i_var} < {a}.length; {i_var}++) {{ \
                     {s} = {s} + {a}[{i_var}]; }}\n",
                    a = a.name
                ));
                ctx.push(Var {
                    name: s,
                    ty: Ty::Num,
                    bound: CAP.saturating_mul(16),
                    refined: false,
                });
            } else {
                let k = 2 + self.below(2) as i64;
                body.push_str(&format!(
                    "    var {i_var};\n    \
                     for ({i_var} = 0; {i_var} < {a}.length; {i_var}++) {{ \
                     {a}[{i_var}] = ({a}[{i_var}] * {k}) + 1; }}\n",
                    a = a.name
                ));
            }
            cost += 10;
        }

        // Occasionally a provable assertion (R0011's green path).
        if self.chance(1, 5) {
            let (e, _) = self.expr(Ty::Nat, &ctx, 1);
            body.push_str(&format!("    assert(0 <= {e});\n"));
        }

        let (ret_expr, ret_bound) = self.expr(ret, &ctx, 2);
        body.push_str(&format!("    return {ret_expr};\n"));

        let sig_params: Vec<String> = params
            .iter()
            .map(|(n, t)| format!("{n}: {}", self.ann(*t)))
            .collect();
        let text = format!(
            "function {name}({}): {} {{\n{body}}}\n",
            sig_params.join(", "),
            self.ann(ret)
        );
        GenFun {
            name,
            params,
            ret,
            text,
            calls,
            cost,
            ret_bound: ret_bound.max(1),
        }
    }

    /// The top-level `return` that drives both interpreters: a sum of
    /// one or two calls to generated numeric functions (literal-only
    /// arguments), falling back to a constant when none exists.
    fn tail(&mut self) -> (String, Vec<usize>) {
        let numeric: Vec<usize> = (0..self.funs.len())
            .filter(|&j| self.funs[j].ret.numeric())
            .collect();
        if numeric.is_empty() {
            return ("return 0;\n".to_string(), Vec::new());
        }
        let mut terms = Vec::new();
        let mut called = Vec::new();
        for _ in 0..=self.below(2).min((numeric.len() - 1) as u64) {
            let j = numeric[self.below(numeric.len() as u64) as usize];
            let target = self.funs[j].clone();
            let args: Vec<String> = target
                .params
                .iter()
                .map(|(_, ty)| self.arg(*ty, &[]))
                .collect();
            terms.push(format!("{}({})", target.name, args.join(", ")));
            called.push(j);
        }
        (format!("return ({});\n", terms.join(" + ")), called)
    }
}

/// Literal-only arguments for calling `f` from a context with nothing
/// in scope (workspace roots calling into cluster files).
pub fn literal_args(f: &GenFun, rng: &mut TestRng) -> String {
    f.params
        .iter()
        .map(|(_, ty)| match ty {
            Ty::Pos => (1 + rng.below(9)).to_string(),
            Ty::Nat | Ty::Num => rng.below(10).to_string(),
            Ty::Bool => "true".to_string(),
            Ty::Arr => {
                let len = 2 + rng.below(3);
                let elems: Vec<String> = (0..len).map(|_| rng.below(10).to_string()).collect();
                format!("[{}]", elems.join(", "))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}
