//! Splitting generated programs into multi-file import closures, and
//! materializing a large on-disk workspace for batch checking.
//!
//! A [`GenProgram`]'s functions are stratified (calls only go
//! backward), so slicing the function list into contiguous chunks
//! yields files whose import edges all point at earlier files — an
//! acyclic closure whose topological order is exactly the original
//! item order. The workspace-merge oracle checks the closure against a
//! cold check of the *module-qualified* merged program. Every file
//! additionally declares the same non-exported `sharedHelper` /
//! `sharedCaller` pair with a file-specific refinement, so a merge
//! that leaks one module's private helper into another fails
//! verification instead of passing silently.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use proptest::test_runner::TestRng;

use crate::generate::{generate, literal_args, GenConfig, GenProgram};

/// Splits `p` into `depth + 1` files (clamped so every file holds at
/// least one function). File names come from `name(k)`; import
/// specifiers are `./{name(k)}`, so names must be extension-qualified
/// leaf names (e.g. `m0.rsc`) resolvable relative to each other. When
/// `include_tail` is set the final file ends with the program's
/// top-level `return` (single-root closures); cluster files for the
/// batch workspace omit it.
///
/// Returns `(file name, file text)` pairs in topological order (the
/// root is last).
pub fn split(
    p: &GenProgram,
    depth: usize,
    name: impl Fn(usize) -> String,
    include_tail: bool,
) -> Vec<(String, String)> {
    let n = p.funs.len().max(1);
    let nfiles = (depth + 1).clamp(1, n);
    let file_of = |i: usize| i * nfiles / n;

    let mut texts: Vec<String> = vec![String::new(); nfiles];
    let mut imports: Vec<BTreeMap<usize, Vec<String>>> = vec![BTreeMap::new(); nfiles];
    let mut exports: Vec<Vec<String>> = vec![Vec::new(); nfiles];

    // The alias preamble lives in (and is exported by) file 0; every
    // later file imports both aliases (harmlessly even if unused —
    // parameter and local annotations mention them pervasively).
    let aliases: Vec<String> = p
        .preamble
        .lines()
        .filter_map(|l| l.strip_prefix("type ")?.split_whitespace().next())
        .map(String::from)
        .collect();
    exports[0].extend(aliases.iter().cloned());
    for imp in imports.iter_mut().skip(1) {
        imp.insert(0, aliases.clone());
    }

    for (i, f) in p.funs.iter().enumerate() {
        let k = file_of(i);
        for &j in &f.calls {
            let from = file_of(j);
            if from != k {
                let names = imports[k].entry(from).or_default();
                if !names.contains(&p.funs[j].name) {
                    names.push(p.funs[j].name.clone());
                }
            }
        }
        exports[k].push(f.name.clone());
        texts[k].push_str("export ");
        texts[k].push_str(&f.text);
    }
    // Deliberate cross-file collisions: every file declares the *same*
    // non-exported helper pair with a file-specific refinement, so the
    // caller only verifies against its own file's helper. Any merge
    // that lets one module's `sharedHelper` capture another's (the
    // pre-qualification namespace bug) fails verification — the oracle
    // turns module identity into a checked property.
    for (k, text) in texts.iter_mut().enumerate() {
        text.push_str(&format!(
            "function sharedHelper(a: number): {{v: number | a + {k} <= v}} {{ return a + {next}; }}\n\
             function sharedCaller(b: number): {{v: number | b + {k} <= v}} {{ return sharedHelper(b); }}\n",
            next = k + 1
        ));
    }

    if include_tail {
        let k = nfiles - 1;
        for &j in &p.tail_calls {
            let from = file_of(j);
            if from != k {
                let names = imports[k].entry(from).or_default();
                if !names.contains(&p.funs[j].name) {
                    names.push(p.funs[j].name.clone());
                }
            }
        }
        texts[k].push_str(&p.tail);
    }

    // Connectivity: each file imports at least one name from its
    // predecessor, so the root's transitive closure is the whole chain
    // (a generated call pattern may otherwise skip a file entirely).
    for k in 1..nfiles {
        imports[k].entry(k - 1).or_insert_with(|| {
            vec![exports[k - 1]
                .first()
                .expect("every file exports something")
                .clone()]
        });
    }

    (0..nfiles)
        .map(|k| {
            let mut out = String::new();
            for (from, names) in &imports[k] {
                out.push_str(&format!(
                    "import {{{}}} from \"./{}\";\n",
                    names.join(", "),
                    name(*from)
                ));
            }
            if k == 0 {
                for line in p.preamble.lines() {
                    out.push_str("export ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out.push_str(&texts[k]);
            (name(k), out)
        })
        .collect()
}

/// Summary of an emitted on-disk workspace.
#[derive(Clone, Debug)]
pub struct EmitSummary {
    /// Where the files were written.
    pub dir: PathBuf,
    /// Number of `.rsc` files written (clusters + the root).
    pub files: usize,
    /// Total non-blank, non-comment lines across all files.
    pub loc: usize,
    /// Number of generated clusters.
    pub clusters: usize,
}

/// Materializes a ≥ `min_loc`-LOC workspace under `dir`: independent
/// well-typed clusters (each split into a `depth + 1`-file import
/// chain) plus a `root.rsc` importing one entry point from each of the
/// first few clusters. Every file verifies; the whole directory is the
/// `rsc check --recursive` batch-mode corpus.
pub fn emit_workspace(
    dir: &Path,
    seed: u64,
    min_loc: usize,
    depth: usize,
    funs_per_cluster: usize,
) -> io::Result<EmitSummary> {
    std::fs::create_dir_all(dir)?;
    let mut loc = 0usize;
    let mut files = 0usize;
    let mut cluster = 0usize;
    // (file defining it, function) entry points for the root.
    let mut entries: Vec<(String, String, String)> = Vec::new();
    let mut rng = TestRng::from_seed(seed | 1);

    while loc < min_loc {
        let p = generate(
            &mut rng,
            GenConfig {
                funs: funs_per_cluster,
                cluster: Some(cluster),
            },
        );
        let parts = split(&p, depth, |k| format!("c{cluster}_m{k}.rsc"), false);
        for (name, text) in &parts {
            loc += rsc_bench::count_loc(text);
            std::fs::write(dir.join(name), text)?;
            files += 1;
        }
        if let Some(j) = (0..p.funs.len()).rev().find(|&j| p.funs[j].ret.numeric()) {
            let f = &p.funs[j];
            let nfiles = (depth + 1).clamp(1, p.funs.len());
            let k = j * nfiles / p.funs.len();
            entries.push((
                format!("c{cluster}_m{k}.rsc"),
                f.name.clone(),
                literal_args(f, &mut rng),
            ));
        }
        cluster += 1;
    }

    // The root stitches a handful of clusters together (kept small so
    // its merged closure stays a fraction of the whole workspace).
    let picked: Vec<_> = entries.iter().take(4).collect();
    let mut root = String::new();
    for (file, name, _) in &picked {
        root.push_str(&format!("import {{{name}}} from \"./{file}\";\n"));
    }
    let terms: Vec<String> = picked
        .iter()
        .map(|(_, name, args)| format!("{name}({args})"))
        .collect();
    if terms.is_empty() {
        root.push_str("return 0;\n");
    } else {
        root.push_str(&format!("return ({});\n", terms.join(" + ")));
    }
    loc += rsc_bench::count_loc(&root);
    std::fs::write(dir.join("root.rsc"), root)?;
    files += 1;

    Ok(EmitSummary {
        dir: dir.to_path_buf(),
        files,
        loc,
        clusters: cluster,
    })
}
