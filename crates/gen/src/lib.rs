//! # rsc-gen
//!
//! Adversarial testing for the RSC checker: a typing-rule-directed
//! generator that emits *well-refinement-typed programs by
//! construction* ([`generate`]), a mutation mode that breaks exactly
//! one obligation per program ([`mutate`]), and five differential
//! oracles ([`oracle`]) any violation of which is a real bug:
//!
//! 1. **Soundness** — verified programs run on both interpreters
//!    without runtime errors and agree (the paper's Theorems 2–5,
//!    exercised adversarially instead of on hand-picked fixtures).
//! 2. **Determinism** — diagnostics are byte-identical for `jobs=1`
//!    and `jobs=N`.
//! 3. **Absint equivalence** — the abstract-interpretation pre-pass
//!    changes no diagnostic byte and its discharge count exactly
//!    accounts for the queries it saves.
//! 4. **Incremental equivalence** — replaying a generated edit script
//!    through a [`rsc_incr::CheckSession`] matches a cold check at
//!    every step.
//! 5. **Workspace-merge equivalence** — a generated multi-file import
//!    closure checks byte-identically to its concatenation.
//!
//! The `rsc fuzz` subcommand drives [`run_fuzz`]; `rsc check
//! --recursive` batch-checks the workspace [`workspace::emit_workspace`]
//! materializes. Failures always print the seed and case index, so
//! `rsc fuzz --seed S --cases 1 --skip K` replays a single case
//! exactly.

#![warn(missing_docs)]

pub mod generate;
pub mod mutate;
pub mod oracle;
pub mod workspace;

use proptest::test_runner::TestRng;

pub use generate::{generate, GenConfig, GenProgram};
pub use mutate::{coupled, templates, Mutation};
pub use workspace::{emit_workspace, EmitSummary};

/// Knobs for one fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` derives its own stream from `seed` and `i`.
    pub seed: u64,
    /// Cases to skip before running (replay: `--skip K --cases 1`).
    pub skip: u32,
    /// Functions per generated program.
    pub size: usize,
    /// Import-chain depth for the workspace-merge oracle (files − 1).
    pub workspace_depth: usize,
    /// Worker count for the determinism oracle's parallel leg.
    pub jobs: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 100,
            seed: 0,
            skip: 0,
            size: 8,
            workspace_depth: 2,
            jobs: 4,
        }
    }
}

/// One oracle violation, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Case index within the run.
    pub case: u32,
    /// The run's base seed.
    pub seed: u64,
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// Failure description (includes program text where useful).
    pub detail: String,
}

/// Aggregate results of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Cases completed.
    pub cases: u32,
    /// Mutants generated and checked.
    pub mutants: u32,
    /// Obligation codes exercised by mutations, with counts.
    pub kinds: std::collections::BTreeMap<&'static str, u32>,
    /// All violations found (empty on a clean run).
    pub violations: Vec<Violation>,
}

/// The per-case RNG: one splitmix64 stream per (seed, case), so any
/// failing case replays in isolation.
fn case_rng(seed: u64, case: u32) -> TestRng {
    TestRng::from_seed(seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1))
}

/// Runs every oracle over one generated case, appending violations and
/// mutation-kind counts to `out`.
pub fn run_case(cfg: &FuzzConfig, case: u32, out: &mut FuzzSummary) {
    let mut rng = case_rng(cfg.seed, case);
    let fail = |oracle: &'static str, detail: String| Violation {
        case,
        seed: cfg.seed,
        oracle,
        detail,
    };

    let p = generate(
        &mut rng,
        GenConfig {
            funs: cfg.size,
            cluster: None,
        },
    );
    let src = p.text();

    if let Err(e) = oracle::soundness(&src) {
        out.violations
            .push(fail("soundness", format!("{e}\n--- program\n{src}")));
        return; // Everything downstream assumes a verified base.
    }
    if let Err(e) = oracle::pretty_roundtrip(&src) {
        out.violations.push(fail("pretty-roundtrip", e));
    }

    // Mutation: rotate deterministically through the 13 standalone
    // templates plus the coupled call-argument mutation, so a couple
    // dozen cases cover every obligation kind.
    let ts = templates("m", "nat", "pos");
    let idx = case as usize % (ts.len() + 1);
    let m = if idx == ts.len() {
        coupled(&p, "m").unwrap_or_else(|| ts[0].clone())
    } else {
        ts[idx].clone()
    };
    out.mutants += 1;
    *out.kinds.entry(m.kind.code()).or_insert(0) += 1;
    if let Err(e) = oracle::mutant_rejected(&p, &m) {
        out.violations.push(fail("mutation", e));
    }
    let (mutant_src, _) = p.text_with_insert(&m.text);

    // Determinism, on the diagnostics-bearing mutant (rejections are
    // where ordering bugs would show) and on the clean base.
    if let Err(e) = oracle::determinism(&mutant_src, cfg.jobs) {
        out.violations.push(fail("determinism", e));
    }
    if let Err(e) = oracle::determinism(&src, cfg.jobs) {
        out.violations.push(fail("determinism", e));
    }

    // Absint: the pre-pass must be invisible in diagnostics and exact
    // in its query accounting — on the clean base and on the
    // diagnostics-bearing mutant (where a wrong discharge would flip a
    // failure).
    if let Err(e) = oracle::absint(&src) {
        out.violations
            .push(fail("absint", format!("{e}\n--- program\n{src}")));
    }
    if let Err(e) = oracle::absint(&mutant_src) {
        out.violations.push(fail("absint", e));
    }

    // Incremental: an edit script that introduces the mutation and
    // reverts it must match cold checks step for step.
    let steps = vec![src.clone(), mutant_src, src.clone()];
    if let Err(e) = oracle::incremental(&steps) {
        out.violations.push(fail("incremental", e));
    }

    // Workspace merge: the same program split into an import chain.
    let files = workspace::split(&p, cfg.workspace_depth, |k| format!("wsm{k}.rsc"), true);
    let root = files
        .last()
        .expect("split yields at least one file")
        .0
        .clone();
    if let Err(e) = oracle::workspace_merge(&files, &root) {
        out.violations.push(fail("workspace-merge", e));
    }

    out.cases += 1;
}

/// Runs the full fuzz loop. `progress` is called after every case with
/// the running summary (the CLI prints a heartbeat; tests pass a
/// no-op). Stops early once 5 violations have accumulated — each
/// violation is a real bug, and a broken invariant tends to fail every
/// case after it.
pub fn run_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(u32, &FuzzSummary)) -> FuzzSummary {
    let mut out = FuzzSummary::default();
    for case in cfg.skip..cfg.skip.saturating_add(cfg.cases) {
        run_case(cfg, case, &mut out);
        progress(case, &out);
        if out.violations.len() >= 5 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_core::ObligationKind;

    /// Every reachable obligation kind `R0001`–`R0013` is covered by at
    /// least one mutation template, and each template actually trips
    /// its kind against a generated base program.
    #[test]
    fn every_obligation_kind_has_a_mutation_template() {
        let ts = templates("k", "nat", "pos");
        for kind in ObligationKind::all() {
            if *kind == ObligationKind::Other {
                continue; // synthetic-only (hand-built constraint sets)
            }
            assert!(
                ts.iter().any(|m| m.kind == *kind),
                "no mutation template for {kind:?} ({})",
                kind.code()
            );
        }
        let mut rng = case_rng(7, 0);
        let p = generate(&mut rng, GenConfig::default());
        assert!(
            oracle::soundness(&p.text()).is_ok(),
            "base program must verify"
        );
        for m in &ts {
            oracle::mutant_rejected(&p, m)
                .unwrap_or_else(|e| panic!("{} template: {e}", m.kind.code()));
        }
    }

    /// The coupled mutation (bad argument into a generated function) is
    /// rejected with R0001 whenever a nat/pos parameter exists.
    #[test]
    fn coupled_mutation_rejected() {
        for seed in 0..4 {
            let mut rng = case_rng(seed, 1);
            let p = generate(&mut rng, GenConfig::default());
            if let Some(m) = coupled(&p, "k") {
                assert_eq!(m.kind, ObligationKind::CallArgument);
                oracle::mutant_rejected(&p, &m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    /// A small end-to-end fuzz run is clean (the CI leg runs a larger
    /// one through the CLI).
    #[test]
    fn small_fuzz_run_is_clean() {
        let cfg = FuzzConfig {
            cases: 6,
            seed: 42,
            size: 5,
            ..FuzzConfig::default()
        };
        let out = run_fuzz(&cfg, |_, _| {});
        assert_eq!(out.cases, 6);
        assert!(
            out.violations.is_empty(),
            "violations: {:#?}",
            out.violations
        );
    }

    /// The workspace splitter round-trips: the closure concatenation
    /// has the same items in the same order as the single-file text.
    #[test]
    fn split_preserves_function_order() {
        let mut rng = case_rng(3, 2);
        let p = generate(
            &mut rng,
            GenConfig {
                funs: 6,
                cluster: None,
            },
        );
        let files = workspace::split(&p, 2, |k| format!("wsm{k}.rsc"), true);
        assert_eq!(files.len(), 3);
        let concat: String = files.iter().map(|(_, t)| t.as_str()).collect();
        for f in &p.funs {
            assert!(concat.contains(&f.text), "{} missing from split", f.name);
        }
        assert!(concat.ends_with(&p.tail));
    }
}
