//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **path sensitivity** (§2.1.1): without branch guards, the `head0`
//!   family of programs stops verifying — we measure the time and assert
//!   the expected verification outcome flips;
//! * **qualifier pool size**: prelude-only vs prelude+mined qualifiers
//!   changes fixpoint cost;
//! * **worker count**: the parallel solve step at `jobs` 1 vs 4 (same
//!   verdict and diagnostics by construction, different wall clock).

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_bench::corpus;
use rsc_core::CheckerOptions;

fn options(path: bool, mine: bool) -> CheckerOptions {
    CheckerOptions {
        path_sensitivity: path,
        prelude_qualifiers: true,
        mine_qualifiers: mine,
        ..CheckerOptions::default()
    }
}

fn with_jobs(jobs: usize) -> CheckerOptions {
    CheckerOptions {
        jobs,
        ..CheckerOptions::default()
    }
}

fn bench_ablations(c: &mut Criterion) {
    let src = corpus::load_benchmark("d3-arrays").expect("benchmark source");

    // Sanity: the ablated configuration changes the verdict, not just time.
    let full = rsc_core::check_program(&src, options(true, true));
    assert!(full.ok(), "full configuration verifies");
    let no_path = rsc_core::check_program(&src, options(false, true));
    assert!(
        !no_path.ok(),
        "without path sensitivity the guarded accesses must fail"
    );

    let mut group = c.benchmark_group("ablations_d3");
    group.sample_size(10);
    for (label, opts) in [
        ("full", options(true, true)),
        ("no_path_sensitivity", options(false, true)),
        ("no_mined_qualifiers", options(true, false)),
        ("jobs1", with_jobs(1)),
        ("jobs4", with_jobs(4)),
        (
            "no_vc_cache",
            CheckerOptions {
                vc_cache: false,
                ..CheckerOptions::default()
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                rsc_core::check_program(std::hint::black_box(&src), opts)
                    .stats
                    .smt_queries
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
