//! Criterion benchmark behind the Time column of Figure 6: full-pipeline
//! checking time (parse → SSA → constraints → Liquid fixpoint → SMT) per
//! benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_bench::corpus;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_check_time");
    group.sample_size(10);
    for name in corpus::benchmark_names() {
        let src = corpus::load_benchmark(name).expect("benchmark source");
        group.bench_function(*name, |b| {
            b.iter(|| {
                let r = rsc_core::check_program(
                    std::hint::black_box(&src),
                    rsc_core::CheckerOptions::default(),
                );
                assert!(r.ok(), "{name} must verify during benchmarking");
                r.stats.smt_queries
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
