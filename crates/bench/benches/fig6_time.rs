//! Criterion benchmark behind the Time column of Figure 6: full-pipeline
//! checking time (parse → SSA → constraints → Liquid fixpoint → SMT) per
//! benchmark, plus the `--jobs` speedup curve of the parallel solve step
//! over the whole 7-program corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_bench::corpus;
use rsc_core::CheckerOptions;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_check_time");
    group.sample_size(10);
    for name in corpus::benchmark_names() {
        let src = corpus::load_benchmark(name).expect("benchmark source");
        group.bench_function(*name, |b| {
            b.iter(|| {
                let r =
                    rsc_core::check_program(std::hint::black_box(&src), CheckerOptions::default());
                assert!(r.ok(), "{name} must verify during benchmarking");
                r.stats.smt_queries
            })
        });
    }
    group.finish();
}

/// The speedup curve over the whole 7-program corpus:
///
/// * `uncached_jobs1` — the sequential, cache-free pipeline (the seed
///   baseline); every other point should beat it on any machine, since
///   the VC cache alone removes ~20% of solver calls;
/// * `corpus_jobsN` — the parallel solve step at N workers. The thread
///   curve only bends on multi-core hardware; on a single-core CI
///   container the jobs points sit on top of each other (the auto
///   default resolves to 1 worker there for exactly that reason).
///
/// Per-program diagnostics are byte-identical at every point (see
/// `tests/parallel_determinism.rs`); only wall-clock time moves.
fn bench_jobs_speedup(c: &mut Criterion) {
    let sources: Vec<(&str, String)> = corpus::benchmark_names()
        .iter()
        .map(|n| (*n, corpus::load_benchmark(n).expect("benchmark source")))
        .collect();

    // The cache must actually be earning its keep while we measure.
    let probe = rsc_core::check_program(&sources[0].1, CheckerOptions::default());
    assert!(
        probe.stats.cache_hits > 0,
        "VC cache reported no hits on {}",
        sources[0].0
    );

    let run_corpus = |sources: &[(&str, String)], opts: CheckerOptions| {
        let mut queries = 0u64;
        for (name, src) in sources {
            let r = rsc_core::check_program(std::hint::black_box(src), opts);
            assert!(r.ok(), "{name} must verify during benchmarking");
            queries += r.stats.smt_queries;
        }
        queries
    };

    let mut group = c.benchmark_group("fig6_jobs_speedup");
    group.sample_size(10);
    let baseline = CheckerOptions {
        jobs: 1,
        vc_cache: false,
        ..CheckerOptions::default()
    };
    group.bench_function("uncached_jobs1", |b| {
        b.iter(|| run_corpus(&sources, baseline))
    });
    for jobs in [1usize, 2, 4, 8] {
        let opts = CheckerOptions {
            jobs,
            ..CheckerOptions::default()
        };
        group.bench_function(format!("corpus_jobs{jobs}"), |b| {
            b.iter(|| run_corpus(&sources, opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6, bench_jobs_speedup);
criterion_main!(benches);
