//! Micro-benchmarks of the SMT substrate on the verification-condition
//! shapes RSC emits: array bounds (LIA), reflection tags (EUF over
//! strings), and interface-hierarchy masks (bit-vectors).

use criterion::{criterion_group, criterion_main, Criterion};
use rsc_logic::{BinOp, CmpOp, Pred, Sort, SortEnv, Term};
use rsc_smt::Solver;

fn array_bounds_vc() -> (SortEnv, Vec<Pred>, Pred) {
    let mut env = SortEnv::new();
    env.bind("a", Sort::Ref);
    env.bind("i", Sort::Int);
    env.bind("v", Sort::Int);
    let len_a = Term::len_of(Term::var("a"));
    let hyps = vec![
        Pred::cmp(CmpOp::Le, Term::int(0), len_a.clone()),
        Pred::cmp(CmpOp::Le, Term::int(0), Term::var("i")),
        Pred::cmp(CmpOp::Lt, Term::var("i"), len_a.clone()),
        Pred::vv_eq(Term::var("i")),
    ];
    let goal = Pred::and(vec![
        Pred::cmp(CmpOp::Le, Term::int(0), Term::vv()),
        Pred::cmp(CmpOp::Lt, Term::vv(), len_a),
    ]);
    (env, hyps, goal)
}

fn reflection_vc() -> (SortEnv, Vec<Pred>, Pred) {
    // The dead-part obligation the checker emits when narrowing
    // `number + undefined` under a `typeof x === "number"` guard: the
    // undefined part's tags contradict the guard, proving the part dead.
    let mut env = SortEnv::new();
    env.bind("x", Sort::Ref);
    env.bind("v", Sort::Ref);
    env.declare_fun("undefv", rsc_logic::FunSig::Fixed(vec![], Sort::Ref));
    let hyps = vec![
        Pred::eq(Term::ttag_of(Term::var("x")), Term::str("number")),
        Pred::vv_eq(Term::var("x")),
        Pred::and(vec![
            Pred::eq(Term::ttag_of(Term::vv()), Term::str("undefined")),
            Pred::eq(Term::vv(), Term::app("undefv", vec![])),
        ]),
    ];
    (env, hyps, Pred::False)
}

fn bitvector_vc() -> (SortEnv, Vec<Pred>, Pred) {
    let mut env = SortEnv::new();
    env.bind("f", Sort::Bv32);
    env.bind("t", Sort::Ref);
    let masked = |m: u32| Term::bin(BinOp::BvAnd, Term::var("f"), Term::bv(m));
    let hyps = vec![
        Pred::imp(
            Pred::cmp(CmpOp::Ne, masked(0x1c00), Term::bv(0)),
            Pred::App(
                rsc_logic::Sym::from("impl"),
                vec![Term::var("t"), Term::str("ObjectType")],
            ),
        ),
        Pred::cmp(CmpOp::Ne, masked(0x0400), Term::bv(0)),
    ];
    let goal = Pred::App(
        rsc_logic::Sym::from("impl"),
        vec![Term::var("t"), Term::str("ObjectType")],
    );
    (env, hyps, goal)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt_vcs");
    for (label, (env, hyps, goal)) in [
        ("array_bounds", array_bounds_vc()),
        ("reflection_tags", reflection_vc()),
        ("bitvector_masks", bitvector_vc()),
    ] {
        // Validity must hold — the bench measures proof time.
        assert!(Solver::new().is_valid(&env, &hyps, &goal), "{label}");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = Solver::new();
                s.is_valid(
                    std::hint::black_box(&env),
                    std::hint::black_box(&hyps),
                    std::hint::black_box(&goal),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
