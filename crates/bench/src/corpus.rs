//! Corpus loading, LOC counting, and the T/M/R annotation taxonomy of
//! Figure 6: **T**rivial annotations (plain TypeScript types), **M**
//! annotations carrying mutability information, and **R** annotations that
//! mention actual refinements.

use std::collections::HashSet;
use std::path::PathBuf;

use rsc_syntax::ast::{FieldMut, Item, Program};
use rsc_syntax::types::{AnnArg, AnnTy, FunTy};
use rsc_syntax::Mutability;

/// The benchmarks of Figure 6, in the paper's order.
pub fn benchmark_names() -> &'static [&'static str] {
    &[
        "navier-stokes",
        "splay",
        "richards",
        "raytrace",
        "transducers",
        "d3-arrays",
        "tsc-checker",
    ]
}

/// The corpus directory (workspace-relative).
pub fn benchmarks_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("benchmarks");
    p
}

/// Reads a benchmark source by name.
pub fn load_benchmark(name: &str) -> std::io::Result<String> {
    std::fs::read_to_string(benchmarks_dir().join(format!("{name}.rsc")))
}

/// The seeded-bug mutations `(benchmark, original snippet, buggy
/// replacement)` shared by the rejection suite (golden diagnostics in
/// `tests/benchmarks_verify.rs`) and the parallel-determinism suite —
/// one table so both stay pinned to the same bugs by construction.
pub fn seeded_mutations() -> &'static [(&'static str, &'static str, &'static str)] {
    &[
        ("navier-stokes", "i + 1 < row.length", "i + 1 <= row.length"),
        ("raytrace", "out[2] = a[2] + b[2];", "out[3] = a[2] + b[2];"),
        (
            "tsc-checker",
            "t.flags & TypeFlags.Object",
            "t.flags & TypeFlags.String",
        ),
        ("richards", "handlers[id]", "handlers[id + 1]"),
        ("d3-arrays", "var best = a[0];", "var best = a[1];"),
        ("splay", "keys[i] = keys[i - 1];", "keys[i] = keys[i + 1];"),
        (
            "transducers",
            "return reduce(a, f, a[0]);",
            "return reduce(a, f, a[1]);",
        ),
    ]
}

/// Non-comment, non-blank lines of code (cloc-style, as in Figure 6).
pub fn count_loc(src: &str) -> usize {
    let mut in_block = false;
    let mut n = 0;
    for line in src.lines() {
        let mut t = line.trim();
        let mut has_code = false;
        loop {
            if in_block {
                match t.find("*/") {
                    Some(end) => {
                        in_block = false;
                        t = t[end + 2..].trim();
                    }
                    None => {
                        t = "";
                        break;
                    }
                }
            }
            match (t.find("//"), t.find("/*")) {
                // A line comment before any block open ends the line.
                (Some(l), Some(b)) if l < b => {
                    t = t[..l].trim();
                    break;
                }
                (Some(l), None) => {
                    t = t[..l].trim();
                    break;
                }
                (_, Some(b)) => {
                    if !t[..b].trim().is_empty() {
                        has_code = true;
                    }
                    in_block = true;
                    t = &t[b + 2..];
                }
                (None, None) => break,
            }
        }
        if has_code || !t.is_empty() {
            n += 1;
        }
    }
    n
}

/// Annotation counts in the taxonomy of Figure 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnotationCounts {
    /// Trivial annotations (plain TypeScript-style types).
    pub trivial: usize,
    /// Annotations carrying mutability information.
    pub mutability: usize,
    /// Annotations mentioning refinements.
    pub refinement: usize,
}

impl AnnotationCounts {
    /// Total annotations.
    pub fn total(&self) -> usize {
        self.trivial + self.mutability + self.refinement
    }
}

/// One row of the Figure 6 table.
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Lines of code.
    pub loc: usize,
    /// Annotation counts.
    pub anns: AnnotationCounts,
    /// Checking time in milliseconds.
    pub time_ms: u128,
    /// Whether verification succeeded.
    pub verified: bool,
    /// Checker statistics.
    pub stats: rsc_core::CheckStats,
}

/// Classifies every annotation in the program. An annotation is **R** if
/// it (transitively, through aliases defined in the same file) mentions a
/// refinement predicate; otherwise **M** if it carries mutability
/// information (explicit modifier, `immutable` field, non-default method
/// receiver); otherwise **T**.
pub fn classify_annotations(prog: &Program) -> AnnotationCounts {
    // Aliases whose expansion is refined.
    let mut refined_aliases: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for item in &prog.items {
            if let Item::TypeAlias(a) = item {
                if !refined_aliases.contains(a.name.as_str())
                    && is_refined(&a.body, &refined_aliases)
                {
                    refined_aliases.insert(a.name.to_string());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Collect (annotation, carries-extra-mutability) sites first, then
    // classify.
    let mut sites: Vec<(AnnTy, bool)> = Vec::new();
    let mut extra_refinements = 0usize;
    let mut extra_mutability = 0usize;
    let add_funty = |ft: &FunTy, sites: &mut Vec<(AnnTy, bool)>| {
        for (_, t) in &ft.params {
            sites.push((t.clone(), false));
        }
        sites.push(((*ft.ret).clone(), false));
    };
    for item in &prog.items {
        match item {
            Item::TypeAlias(a) => sites.push((a.body.clone(), false)),
            Item::Declare(d) => sites.push((d.ty.clone(), false)),
            Item::Qualif(_) => extra_refinements += 1,
            Item::Fun(f) => {
                for sig in &f.sigs {
                    add_funty(sig, &mut sites);
                }
            }
            Item::Class(c) => {
                for fd in &c.fields {
                    sites.push((fd.ty.clone(), fd.mutability == FieldMut::Immutable));
                }
                if let Some(ctor) = &c.ctor {
                    for (_, t) in &ctor.params {
                        sites.push((t.clone(), false));
                    }
                }
                for m in &c.methods {
                    // A non-default receiver annotation is an M annotation.
                    if m.recv != Mutability::Mutable {
                        extra_mutability += 1;
                    }
                    add_funty(&m.sig, &mut sites);
                }
            }
            Item::Interface(i) => {
                for fd in &i.fields {
                    sites.push((fd.ty.clone(), fd.mutability == FieldMut::Immutable));
                }
                for m in &i.methods {
                    if m.recv != Mutability::Mutable {
                        extra_mutability += 1;
                    }
                    add_funty(&m.sig, &mut sites);
                }
            }
            Item::Enum(_) | Item::Stmt(_) => {}
        }
    }
    let mut counts = AnnotationCounts {
        refinement: extra_refinements,
        mutability: extra_mutability,
        ..Default::default()
    };
    for (t, extra_mut) in sites {
        if is_refined(&t, &refined_aliases) {
            counts.refinement += 1;
        } else if extra_mut || has_mutability(&t) {
            counts.mutability += 1;
        } else {
            counts.trivial += 1;
        }
    }
    counts
}

fn is_refined(t: &AnnTy, refined_aliases: &HashSet<String>) -> bool {
    match t {
        AnnTy::Refined { .. } => true,
        AnnTy::Name(n, args) => {
            refined_aliases.contains(n.as_str())
                || args.iter().any(|a| match a {
                    AnnArg::Ty(t) => is_refined(t, refined_aliases),
                    AnnArg::Term(_) => true, // dependent application
                    AnnArg::Mut(_) => false,
                })
        }
        AnnTy::Array { elem, nonempty, .. } => *nonempty || is_refined(elem, refined_aliases),
        AnnTy::Union(ps) => ps.iter().any(|p| is_refined(p, refined_aliases)),
        AnnTy::Arrow(ft) => {
            ft.params
                .iter()
                .any(|(_, t)| is_refined(t, refined_aliases))
                || is_refined(&ft.ret, refined_aliases)
        }
    }
}

fn has_mutability(t: &AnnTy) -> bool {
    match t {
        AnnTy::Name(_, args) => args.iter().any(|a| match a {
            AnnArg::Mut(_) => true,
            AnnArg::Ty(t) => has_mutability(t),
            AnnArg::Term(_) => false,
        }),
        // `T[]` is the default; only spelled-out Array<RO/IM/UQ,·> counts,
        // which the parser normalizes — treat non-default element
        // mutability as M.
        AnnTy::Array {
            elem, mutability, ..
        } => *mutability != Mutability::Mutable || has_mutability(elem),
        AnnTy::Refined { base, .. } => has_mutability(base),
        AnnTy::Union(ps) => ps.iter().any(has_mutability),
        AnnTy::Arrow(ft) => {
            ft.params.iter().any(|(_, t)| has_mutability(t)) || has_mutability(&ft.ret)
        }
    }
}

/// Runs the checker on one benchmark and produces a Figure 6 row
/// (default options: parallel solve with auto worker count / `RSC_JOBS`).
pub fn run_benchmark(name: &'static str) -> BenchmarkRow {
    run_benchmark_with(name, rsc_core::CheckerOptions::default())
}

/// Runs the checker on one benchmark with explicit options — the
/// `--jobs` speedup curve uses this with `opts.jobs` swept over 1..N.
pub fn run_benchmark_with(name: &'static str, opts: rsc_core::CheckerOptions) -> BenchmarkRow {
    let src = load_benchmark(name).expect("benchmark source");
    let prog = rsc_syntax::parse_program(&src).expect("benchmark parses");
    let loc = count_loc(&src);
    let anns = classify_annotations(&prog);
    let start = std::time::Instant::now();
    let result = rsc_core::check_program(&src, opts);
    let time_ms = start.elapsed().as_millis();
    BenchmarkRow {
        name,
        loc,
        anns,
        time_ms,
        verified: result.ok(),
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counting() {
        let src = "// comment\n\ncode();\n/* block\n comment */ more();\n";
        assert_eq!(count_loc(src), 2);
        // Code on either side of a same-line block comment still counts,
        // and `//` disables a later `/*` on the same line.
        assert_eq!(count_loc("/* ghost */ var x = 1;\n"), 1);
        assert_eq!(count_loc("var x = 1; /* tail */\n"), 1);
        assert_eq!(count_loc("/* a */ /* b */\n"), 0);
        assert_eq!(count_loc("// no /* block\ncode();\n"), 1);
    }

    #[test]
    fn taxonomy_classification() {
        let prog = rsc_syntax::parse_program(
            r#"
            type nat = {v: number | 0 <= v};
            function f(x: number, y: nat): number { return x; }
            class C {
                immutable k : number;
                constructor(k: number) { this.k = k; }
                @ReadOnly peek(q: Array<RO, number>): number { return 0; }
            }
        "#,
        )
        .unwrap();
        let c = classify_annotations(&prog);
        // R: alias body, y: nat. T: x, f ret, ctor k, q?=M, peek ret.
        assert_eq!(c.refinement, 2, "{c:?}");
        assert!(
            c.mutability >= 3,
            "immutable field + @ReadOnly + RO array: {c:?}"
        );
        assert!(c.trivial >= 3, "{c:?}");
    }

    #[test]
    fn corpus_files_exist_and_parse() {
        for name in benchmark_names() {
            let src = load_benchmark(name).unwrap_or_else(|_| panic!("missing {name}"));
            rsc_syntax::parse_program(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(count_loc(&src) > 50, "{name} is too small");
        }
    }
}
