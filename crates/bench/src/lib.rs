//! # rsc-bench
//!
//! The evaluation harness for the RSC reproduction: loads the benchmark
//! corpus (the seven programs of Figure 6), counts lines and annotations
//! with the paper's T/M/R taxonomy, runs the checker, and regenerates the
//! evaluation tables (Figures 6 and 7 of §5).

#![warn(missing_docs)]

pub mod corpus;

pub use corpus::{
    benchmark_names, benchmarks_dir, classify_annotations, count_loc, load_benchmark,
    run_benchmark, run_benchmark_with, seeded_mutations, AnnotationCounts, BenchmarkRow,
};
