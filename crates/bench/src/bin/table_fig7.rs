//! Regenerates **Figure 7** of the paper: per-benchmark lines of code and
//! the important/total code-change counts recorded while porting
//! (`benchmarks/meta.toml`), next to the paper's numbers.
//!
//! ```text
//! cargo run -p rsc_bench --bin table_fig7
//! ```

use rsc_bench::corpus;

#[derive(Default, Clone, Copy)]
struct Meta {
    imp_diff: u32,
    all_diff: u32,
    paper_loc: u32,
    paper_imp: u32,
    paper_all: u32,
}

/// A minimal parser for the flat `[section] key = value` file we use
/// (avoids a TOML dependency).
fn parse_meta(src: &str) -> Vec<(String, Meta)> {
    let mut out: Vec<(String, Meta)> = Vec::new();
    for raw in src.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            out.push((name.to_string(), Meta::default()));
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            let Some((_, m)) = out.last_mut() else {
                continue;
            };
            let v: u32 = v.trim().parse().unwrap_or(0);
            match k.trim() {
                "imp_diff" => m.imp_diff = v,
                "all_diff" => m.all_diff = v,
                "paper_loc" => m.paper_loc = v,
                "paper_imp" => m.paper_imp = v,
                "paper_all" => m.paper_all = v,
                _ => {}
            }
        }
    }
    out
}

fn main() {
    let path = corpus::benchmarks_dir().join("meta.toml");
    let src = std::fs::read_to_string(&path).expect("benchmarks/meta.toml");
    let meta = parse_meta(&src);

    println!("Figure 7 — code changes while porting (measured | paper)");
    println!();
    println!(
        "{:<15} {:>5} {:>8} {:>8} | {:>5} {:>8} {:>8}",
        "Benchmark", "LOC", "ImpDiff", "AllDiff", "LOC", "ImpDiff", "AllDiff"
    );
    println!("{}", "-".repeat(70));
    let mut tot = (0usize, 0u32, 0u32);
    let mut ptot = (0u32, 0u32, 0u32);
    for (name, m) in &meta {
        let loc = corpus::load_benchmark(name)
            .map(|s| corpus::count_loc(&s))
            .unwrap_or(0);
        println!(
            "{:<15} {:>5} {:>8} {:>8} | {:>5} {:>8} {:>8}",
            name, loc, m.imp_diff, m.all_diff, m.paper_loc, m.paper_imp, m.paper_all
        );
        tot.0 += loc;
        tot.1 += m.imp_diff;
        tot.2 += m.all_diff;
        ptot.0 += m.paper_loc;
        ptot.1 += m.paper_imp;
        ptot.2 += m.paper_all;
    }
    println!("{}", "-".repeat(70));
    println!(
        "{:<15} {:>5} {:>8} {:>8} | {:>5} {:>8} {:>8}",
        "TOTAL", tot.0, tot.1, tot.2, ptot.0, ptot.1, ptot.2
    );
    println!();
    println!(
        "important changes per LOC: {:.1}% (paper: {:.1}%)",
        100.0 * tot.1 as f64 / tot.0 as f64,
        100.0 * ptot.1 as f64 / ptot.0 as f64
    );
}
