//! The incremental-checking benchmark: cold whole-program check time
//! versus one-function-edit re-check time through a persistent
//! [`rsc_incr::CheckSession`], per corpus benchmark.
//!
//! ```text
//! cargo run --release -p rsc_bench --bin bench_incr
//! ```
//!
//! For every benchmark with a seeded mutation (the same table the
//! rejection suites pin), the harness: cold-checks the program, starts a
//! session, edits the mutation **in** (re-check 1, rejects), and edits
//! it back **out** (re-check 2, verifies). Both re-checks are
//! one-function edits, so the session re-solves a single bundle and
//! reuses the rest. Results are printed as a table and written to
//! `BENCH_incr.json` at the repository root so the perf trajectory
//! accumulates across PRs.

use std::fmt::Write as _;
use std::time::Instant;

use rsc_bench::{load_benchmark, seeded_mutations};
use rsc_core::{check_program, CheckerOptions};
use rsc_incr::CheckSession;

struct Row {
    name: &'static str,
    cold_us: u128,
    edit_in_us: u128,
    edit_out_us: u128,
    bundles: usize,
    resolved: usize,
    speedup: f64,
}

fn main() {
    let opts = CheckerOptions::default();
    let mut rows: Vec<Row> = Vec::new();

    for &(name, from, to) in seeded_mutations() {
        let clean = load_benchmark(name).expect("benchmark source");
        let mutated = clean.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_err() {
            continue; // syntax-breaking mutation: no re-check to measure
        }

        // Cold baseline: a fresh whole-program check of the clean file.
        let t = Instant::now();
        let cold = check_program(&clean, opts);
        let cold_us = t.elapsed().as_micros();
        assert!(cold.ok(), "{name} must verify cold");

        // Session: warm up on the clean file, then measure both edits.
        let mut session = CheckSession::new(opts);
        session.check(&clean);

        let t = Instant::now();
        let broken = session.check(&mutated);
        let edit_in_us = t.elapsed().as_micros();
        assert!(!broken.result.ok(), "{name} seeded bug must be rejected");

        let t = Instant::now();
        let fixed = session.check(&clean);
        let edit_out_us = t.elapsed().as_micros();
        assert!(fixed.result.ok(), "{name} must re-verify after revert");

        let resolved = fixed
            .result
            .bundle_reports
            .iter()
            .filter(|b| !b.cached)
            .count();
        rows.push(Row {
            name,
            cold_us,
            edit_in_us,
            edit_out_us,
            bundles: fixed.result.bundle_reports.len(),
            resolved,
            speedup: cold_us as f64 / edit_out_us.max(1) as f64,
        });
    }

    println!("Incremental re-check vs cold check (one-function edits)");
    println!();
    println!(
        "{:<15} {:>9} {:>11} {:>12} {:>8} {:>9} {:>8}",
        "Benchmark", "Cold(ms)", "EditIn(ms)", "EditOut(ms)", "Bundles", "Resolved", "Speedup"
    );
    println!("{}", "-".repeat(78));
    for r in &rows {
        println!(
            "{:<15} {:>9.1} {:>11.1} {:>12.1} {:>8} {:>9} {:>7.1}x",
            r.name,
            r.cold_us as f64 / 1000.0,
            r.edit_in_us as f64 / 1000.0,
            r.edit_out_us as f64 / 1000.0,
            r.bundles,
            r.resolved,
            r.speedup,
        );
    }

    let ns = rows
        .iter()
        .find(|r| r.name == "navier-stokes")
        .expect("navier-stokes must be measured");
    println!();
    println!(
        "navier-stokes one-function edit: cold {:.1}ms -> re-check {:.1}ms ({:.1}x)",
        ns.cold_us as f64 / 1000.0,
        ns.edit_out_us as f64 / 1000.0,
        ns.speedup,
    );
    if ns.edit_out_us >= ns.cold_us {
        eprintln!("warning: incremental re-check was not faster than cold on this machine");
    }

    // Emit BENCH_incr.json at the repo root.
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cold_us\": {}, \"edit_in_us\": {}, \
             \"edit_out_us\": {}, \"bundles\": {}, \"resolved_on_edit\": {}, \
             \"speedup\": {:.2}}}{}",
            r.name,
            r.cold_us,
            r.edit_in_us,
            r.edit_out_us,
            r.bundles,
            r.resolved,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"headline\": {{\"benchmark\": \"navier-stokes\", \
         \"cold_us\": {}, \"incr_us\": {}, \"speedup\": {:.2}}}\n}}\n",
        ns.cold_us, ns.edit_out_us, ns.speedup
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_incr.json");
    std::fs::write(&path, &json).expect("write BENCH_incr.json");
    println!("wrote {}", path.display());
}
