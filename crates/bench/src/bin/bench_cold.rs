//! The cold-check phase-breakdown benchmark: one whole-program check of
//! every corpus benchmark with the `rsc_obs` span collector enabled,
//! reporting where the time goes — parse, SSA, class-table,
//! constraint-gen, partition, and the solve step (per-bundle solves,
//! fixpoint iterations, SMT queries).
//!
//! ```text
//! cargo run --release -p rsc_bench --bin bench_cold
//! ```
//!
//! Results are printed as a table and written to `BENCH_cold.json` at
//! the repository root so the phase-level perf trajectory accumulates
//! across PRs. Collection is sampling-free and must not change
//! verdicts (asserted here: every benchmark still verifies).

use std::fmt::Write as _;
use std::time::Instant;

use rsc_bench::{benchmark_names, load_benchmark};
use rsc_core::{check_program, CheckerOptions};

struct Row {
    name: &'static str,
    total_us: u128,
    constraints: usize,
    bundles: usize,
    smt_queries: u64,
    discharged: u64,
    phases: Vec<rsc_obs::Phase>,
}

/// The headline phases shown as table columns (the JSON keeps all).
const COLUMNS: [&str; 6] = [
    "parse",
    "ssa",
    "class-table",
    "constraint-gen",
    "partition",
    "solve",
];

fn phase_us(phases: &[rsc_obs::Phase], name: &str) -> u64 {
    phases
        .iter()
        .find(|p| p.name == name)
        .map_or(0, |p| p.total_ns / 1_000)
}

fn main() {
    let opts = CheckerOptions::default();
    rsc_obs::set_enabled(true);
    rsc_obs::drain();

    let mut rows: Vec<Row> = Vec::new();
    for name in benchmark_names() {
        let src = load_benchmark(name).expect("benchmark source");
        rsc_obs::drain(); // isolate this benchmark's spans
        let t = Instant::now();
        let result = check_program(&src, opts);
        let total_us = t.elapsed().as_micros();
        let profile = rsc_obs::drain();
        assert!(result.ok(), "{name} must verify cold");
        rows.push(Row {
            name,
            total_us,
            constraints: result.stats.constraints,
            bundles: result.stats.bundles,
            smt_queries: result.stats.smt_queries,
            discharged: result.stats.obligations_discharged,
            phases: profile.phase_totals(),
        });
    }

    println!("Cold-check phase breakdown (ms per phase)");
    println!();
    print!("{:<15} {:>9}", "Benchmark", "Total");
    for col in COLUMNS {
        print!(" {col:>14}");
    }
    print!(" {:>9} {:>11}", "queries", "discharged");
    println!();
    println!("{}", "-".repeat(47 + 15 * COLUMNS.len()));
    for r in &rows {
        print!("{:<15} {:>9.1}", r.name, r.total_us as f64 / 1000.0);
        for col in COLUMNS {
            print!(" {:>14.1}", phase_us(&r.phases, col) as f64 / 1000.0);
        }
        print!(" {:>9} {:>11}", r.smt_queries, r.discharged);
        println!();
    }

    // Emit BENCH_cold.json at the repo root: every recorded phase (not
    // just the table columns), in name order, per benchmark.
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut phases = String::new();
        for (j, p) in r.phases.iter().enumerate() {
            let _ = write!(
                phases,
                "{}{{\"name\": \"{}\", \"count\": {}, \"total_us\": {}}}",
                if j > 0 { ", " } else { "" },
                p.name,
                p.count,
                p.total_ns / 1_000,
            );
        }
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"total_us\": {}, \"constraints\": {}, \
             \"bundles\": {}, \"smt_queries\": {}, \"discharged\": {},\n     \
             \"phases\": [{}]}}{}",
            r.name,
            r.total_us,
            r.constraints,
            r.bundles,
            r.smt_queries,
            r.discharged,
            phases,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_cold.json");
    std::fs::write(&path, &json).expect("write BENCH_cold.json");
    println!();
    println!("wrote {}", path.display());
}
