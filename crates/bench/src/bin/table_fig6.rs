//! Regenerates **Figure 6** of the paper: per-benchmark LOC, the T/M/R
//! annotation split, and checking time.
//!
//! ```text
//! cargo run -p rsc_bench --bin table_fig6
//! ```
//!
//! Absolute numbers differ from the paper (different port scale, different
//! machine, in-tree SMT solver instead of Z3); the *shape* to compare is:
//! most annotations are trivial, mutability annotations are a modest
//! slice, refinements are the smallest class, and navier-stokes dominates
//! checking time (nonlinear arithmetic through ghost lemmas).

use rsc_bench::corpus;

fn main() {
    // Paper's Figure 6 for side-by-side comparison.
    let paper: &[(&str, u32, u32, u32, u32, u32)] = &[
        ("navier-stokes", 366, 3, 18, 39, 473),
        ("splay", 206, 18, 2, 0, 6),
        ("richards", 304, 61, 5, 17, 7),
        ("raytrace", 576, 68, 14, 2, 15),
        ("transducers", 588, 138, 13, 11, 12),
        ("d3-arrays", 189, 36, 4, 10, 37),
        ("tsc-checker", 293, 10, 48, 12, 62),
    ];

    println!("Figure 6 — benchmark table (measured | paper)");
    println!();
    println!(
        "{:<15} {:>5} {:>4} {:>4} {:>4} {:>9} {:>4} {:>6}  ok | {:>5} {:>4} {:>4} {:>4} {:>8}",
        "Benchmark",
        "LOC",
        "T",
        "M",
        "R",
        "Time(ms)",
        "Bnd",
        "Cache",
        "LOC",
        "T",
        "M",
        "R",
        "Time(s)"
    );
    println!("{}", "-".repeat(104));
    let mut tot = (0usize, 0usize, 0usize, 0usize);
    let mut cache_tot = (0u64, 0u64);
    for (name, p) in corpus::benchmark_names().iter().zip(paper) {
        let row = corpus::run_benchmark(name);
        println!(
            "{:<15} {:>5} {:>4} {:>4} {:>4} {:>9} {:>4} {:>5.0}%  {} | {:>5} {:>4} {:>4} {:>4} {:>8}",
            row.name,
            row.loc,
            row.anns.trivial,
            row.anns.mutability,
            row.anns.refinement,
            row.time_ms,
            row.stats.bundles,
            100.0 * row.stats.cache_hit_rate(),
            if row.verified { "✓" } else { "✗" },
            p.1,
            p.2,
            p.3,
            p.4,
            p.5,
        );
        tot.0 += row.loc;
        tot.1 += row.anns.trivial;
        tot.2 += row.anns.mutability;
        tot.3 += row.anns.refinement;
        cache_tot.0 += row.stats.cache_hits;
        cache_tot.1 += row.stats.cache_misses;
    }
    println!("{}", "-".repeat(104));
    println!(
        "{:<15} {:>5} {:>4} {:>4} {:>4}            | {:>5} {:>4} {:>4} {:>4}",
        "TOTAL", tot.0, tot.1, tot.2, tot.3, 2522, 334, 104, 91
    );
    let total_anns = tot.1 + tot.2 + tot.3;
    if total_anns > 0 {
        println!();
        println!(
            "annotation mix: {:.0}% trivial, {:.0}% mutability, {:.0}% refinement \
             (paper: 63% / 20% / 17%)",
            100.0 * tot.1 as f64 / total_anns as f64,
            100.0 * tot.2 as f64 / total_anns as f64,
            100.0 * tot.3 as f64 / total_anns as f64,
        );
        println!(
            "annotations per LOC: 1 per {:.1} lines (paper: 1 per ~5 lines)",
            tot.0 as f64 / total_anns as f64
        );
        let lookups = cache_tot.0 + cache_tot.1;
        if lookups > 0 {
            println!(
                "VC cache: {} hits / {} lookups ({:.0}%) — Bnd = constraint \
                 bundles solved in parallel (RSC_JOBS / --jobs)",
                cache_tot.0,
                lookups,
                100.0 * cache_tot.0 as f64 / lookups as f64
            );
        }
    }
}
