#!/usr/bin/env python3
"""End-to-end smoke test for `rsc serve` over a scripted edit session.

Usage: python3 scripts/serve_smoke.py [path/to/rsc-binary]

Drives the real binary over the Fig. 6 corpus: for every benchmark with
a seeded mutation, load the clean file, edit the bug in (must reject,
reusing all but the edited function's bundle), edit it back out (must
verify, again with reuse). Exits non-zero on any protocol or verdict
mismatch — this is the CI leg that keeps the serve front-end honest.
"""
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# (benchmark, original snippet, buggy replacement) — mirrors
# rsc_bench::seeded_mutations; check_in_sync() below fails the run if
# the Rust table drifts from this copy.
MUTATIONS = [
    ("navier-stokes", "i + 1 < row.length", "i + 1 <= row.length"),
    ("raytrace", "out[2] = a[2] + b[2];", "out[3] = a[2] + b[2];"),
    ("tsc-checker", "t.flags & TypeFlags.Object", "t.flags & TypeFlags.String"),
    ("richards", "handlers[id]", "handlers[id + 1]"),
    ("d3-arrays", "var best = a[0];", "var best = a[1];"),
]


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_in_sync():
    """Every (from, to) pair must still appear verbatim in the Rust
    mutation table, so editing one side without the other fails CI
    instead of silently testing stale edits."""
    corpus_rs = (ROOT / "crates" / "bench" / "src" / "corpus.rs").read_text()
    for name, frm, to in MUTATIONS:
        for snippet in (frm, to):
            if json.dumps(snippet) not in corpus_rs:
                fail(
                    f"{name}: snippet {snippet!r} not found in "
                    "crates/bench/src/corpus.rs — MUTATIONS is out of sync "
                    "with rsc_bench::seeded_mutations"
                )


def main():
    check_in_sync()
    binary = sys.argv[1] if len(sys.argv) > 1 else str(ROOT / "target/release/rsc")
    requests = []
    expected = []  # (kind, benchmark) per response line
    for name, frm, to in MUTATIONS:
        src = (ROOT / "benchmarks" / f"{name}.rsc").read_text()
        if frm not in src:
            fail(f"{name}: mutation site {frm!r} not found")
        mutated = src.replace(frm, to, 1)
        requests.append({"cmd": "load", "source": src})
        expected.append(("clean-load", name))
        requests.append({"cmd": "edit", "source": mutated})
        expected.append(("broken-edit", name))
        requests.append({"cmd": "edit", "source": src})
        expected.append(("clean-edit", name))
        requests.append({"cmd": "reset"})
        expected.append(("reset", name))
    requests.append({"cmd": "stats"})
    expected.append(("stats", "-"))
    requests.append({"cmd": "quit"})
    expected.append(("quit", "-"))

    stdin = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        [binary, "serve"], input=stdin, capture_output=True, text=True
    )
    if proc.returncode != 0:
        fail(f"serve exited {proc.returncode}: {proc.stderr[-500:]}")
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(expected):
        fail(f"expected {len(expected)} responses, got {len(lines)}")

    for line, (kind, name) in zip(lines, expected):
        v = json.loads(line)
        if not v.get("ok"):
            fail(f"{name}/{kind}: not ok: {line}")
        if kind == "clean-load":
            if v["verified"] is not True:
                fail(f"{name}: clean corpus did not verify: {line}")
        elif kind == "broken-edit":
            if v["verified"] is not False:
                fail(f"{name}: seeded bug not rejected: {line}")
            if not v["diagnostics"]:
                fail(f"{name}: rejection without diagnostics: {line}")
            if v["bundles"] > 1 and v["reused"] == 0:
                fail(f"{name}: broken edit reused nothing: {line}")
        elif kind == "clean-edit":
            if v["verified"] is not True:
                fail(f"{name}: revert did not verify: {line}")
            if v["bundles"] > 1 and not (0 < v["reused"] and v["solved"] < v["bundles"]):
                fail(f"{name}: revert did not reuse bundles: {line}")
        print(f"serve_smoke: ok {name:<14} {kind:<11} "
              f"reused={v.get('reused', '-')}/{v.get('bundles', '-')} "
              f"time_us={v.get('time_us', '-')}")
    print("serve_smoke: PASS")


if __name__ == "__main__":
    main()
