#!/usr/bin/env python3
"""End-to-end smoke test for `rsc serve` over scripted edit sessions.

Usage: python3 scripts/serve_smoke.py [path/to/rsc-binary] [--leg LEG]

Legs (default: legacy + lsp):

* ``legacy``      — the original NDJSON ``cmd`` protocol: for every
  benchmark with a seeded mutation, load the clean file, edit the bug in
  (must reject, reusing all but the edited function's bundle), edit it
  back out (must verify, again with reuse).
* ``lsp``         — the LSP-shaped methods over the same corpus:
  ``initialize``, ``textDocument/didOpen``/``didChange``, asserting that
  every published diagnostic carries a non-dummy 0-based
  ``{start:{line,character},end:{…}}`` range and an ``R…``-style code.
* ``cache-bound`` — a long edit script under ``RSC_CACHE_CAP=16``:
  verdicts must stay correct while the VC cache stays bounded and
  reports evictions.
* ``metrics``     — the observability surface: a short legacy edit
  session, then ``{"cmd":"stats"}`` (must fold in ``importers_skipped``
  and the aggregate ``timing`` summary) and ``{"cmd":"metrics"}`` (must
  report monotonic registry counters, VC-cache counters with a hit
  rate, check-latency percentiles, and cumulative per-phase
  milliseconds covering the span taxonomy). Every check response must
  also carry a per-phase ``timing_ms`` object.
* ``disk-cache``  — the persistent ``--vc-cache DIR`` round-trip: cold
  batch-check the corpus into a fresh directory, let the process exit,
  then re-check with a new process against the warm directory. The warm
  run must reuse every bundle from disk, record **zero** ``smt-query``
  spans, and produce byte-identical verdicts and stats.
* ``multi-file`` — URIs connected by ``import``: a non-exported body
  edit in the exporting document skips the importer's re-check
  entirely (one publish, ``importers_skipped`` counted), while an
  exported-signature edit re-publishes for the importer with the
  dependency named in ``deps_changed`` and the importing unit in
  ``dirty_own``. A second workspace pairs two files that both declare
  the *same* non-exported ``helper`` — per-module qualification keeps
  them apart, so both verify. Finally, ``didChange`` with a
  whole-document ``range`` is accepted and applied, while a genuinely
  partial range is refused with an InvalidParams error.

Exits non-zero on any protocol or verdict mismatch — this is the CI leg
that keeps the serve front-end honest.
"""
import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# (benchmark, original snippet, buggy replacement) — mirrors
# rsc_bench::seeded_mutations; check_in_sync() below fails the run if
# the Rust table drifts from this copy.
MUTATIONS = [
    ("navier-stokes", "i + 1 < row.length", "i + 1 <= row.length"),
    ("raytrace", "out[2] = a[2] + b[2];", "out[3] = a[2] + b[2];"),
    ("tsc-checker", "t.flags & TypeFlags.Object", "t.flags & TypeFlags.String"),
    ("richards", "handlers[id]", "handlers[id + 1]"),
    ("d3-arrays", "var best = a[0];", "var best = a[1];"),
]


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_in_sync():
    """Every (from, to) pair must still appear verbatim in the Rust
    mutation table, so editing one side without the other fails CI
    instead of silently testing stale edits."""
    corpus_rs = (ROOT / "crates" / "bench" / "src" / "corpus.rs").read_text()
    for name, frm, to in MUTATIONS:
        for snippet in (frm, to):
            if json.dumps(snippet) not in corpus_rs:
                fail(
                    f"{name}: snippet {snippet!r} not found in "
                    "crates/bench/src/corpus.rs — MUTATIONS is out of sync "
                    "with rsc_bench::seeded_mutations"
                )


def run_serve(binary, requests, env=None):
    """Feeds one request per line, returns the parsed response lines."""
    stdin = "".join(json.dumps(r) + "\n" for r in requests)
    proc_env = dict(os.environ)
    if env:
        proc_env.update(env)
    proc = subprocess.run(
        [binary, "serve"], input=stdin, capture_output=True, text=True,
        env=proc_env,
    )
    if proc.returncode != 0:
        fail(f"serve exited {proc.returncode}: {proc.stderr[-500:]}")
    return [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]


def corpus():
    out = []
    for name, frm, to in MUTATIONS:
        src = (ROOT / "benchmarks" / f"{name}.rsc").read_text()
        if frm not in src:
            fail(f"{name}: mutation site {frm!r} not found")
        out.append((name, src, src.replace(frm, to, 1)))
    return out


def legacy_leg(binary):
    requests = []
    expected = []  # (kind, benchmark) per response line
    for name, src, mutated in corpus():
        requests.append({"cmd": "load", "source": src})
        expected.append(("clean-load", name))
        requests.append({"cmd": "edit", "source": mutated})
        expected.append(("broken-edit", name))
        requests.append({"cmd": "edit", "source": src})
        expected.append(("clean-edit", name))
        requests.append({"cmd": "reset"})
        expected.append(("reset", name))
    requests.append({"cmd": "stats"})
    expected.append(("stats", "-"))
    requests.append({"cmd": "quit"})
    expected.append(("quit", "-"))

    lines = run_serve(binary, requests)
    if len(lines) != len(expected):
        fail(f"legacy: expected {len(expected)} responses, got {len(lines)}")

    for v, (kind, name) in zip(lines, expected):
        if not v.get("ok"):
            fail(f"{name}/{kind}: not ok: {v}")
        if kind == "clean-load":
            if v["verified"] is not True:
                fail(f"{name}: clean corpus did not verify: {v}")
        elif kind == "broken-edit":
            if v["verified"] is not False:
                fail(f"{name}: seeded bug not rejected: {v}")
            if not v["diagnostics"]:
                fail(f"{name}: rejection without diagnostics: {v}")
            for d in v["diagnostics"]:
                if not d.get("code", "").startswith(("R", "L")):
                    fail(f"{name}: diagnostic without obligation/lint code: {d}")
            if v["bundles"] > 1 and v["reused"] == 0:
                fail(f"{name}: broken edit reused nothing: {v}")
        elif kind == "clean-edit":
            if v["verified"] is not True:
                fail(f"{name}: revert did not verify: {v}")
            if v["bundles"] > 1 and not (0 < v["reused"] and v["solved"] < v["bundles"]):
                fail(f"{name}: revert did not reuse bundles: {v}")
        print(f"serve_smoke: ok {name:<14} {kind:<11} "
              f"reused={v.get('reused', '-')}/{v.get('bundles', '-')} "
              f"time_us={v.get('time_us', '-')}")
    print("serve_smoke: legacy leg PASS")


def lsp_errors(params):
    """Severity-1 diagnostics (refinement errors); severity 2 is the
    dataflow lint layer, which may publish on clean text too."""
    return [d for d in params["diagnostics"] if d.get("severity") == 1]


def assert_lsp_diagnostics(name, params):
    """Every published diagnostic must carry a non-dummy LSP range and
    either an obligation code (severity 1) or a lint code (severity 2)."""
    for d in params["diagnostics"]:
        rng = d.get("range")
        if not rng:
            fail(f"{name}: diagnostic without a range: {d}")
        start, end = rng["start"], rng["end"]
        for pos in (start, end):
            if not {"line", "character"} <= set(pos):
                fail(f"{name}: position missing line/character: {d}")
        if (end["line"], end["character"]) <= (start["line"], start["character"]):
            fail(f"{name}: dummy/empty diagnostic range: {d}")
        code = d.get("code", "")
        if d.get("severity") == 1 and not code.startswith("R"):
            fail(f"{name}: error diagnostic without an R-code: {d}")
        if d.get("severity") == 2 and not code.startswith("L"):
            fail(f"{name}: warning diagnostic without an L-code: {d}")
        if not code.startswith(("R", "L")):
            fail(f"{name}: diagnostic without a code: {d}")
        if d.get("source") != "rsc":
            fail(f"{name}: diagnostic source is not 'rsc': {d}")


def lsp_leg(binary):
    uri = "file:///corpus.rsc"
    requests = [{"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}},
                {"jsonrpc": "2.0", "method": "initialized", "params": {}}]
    expected = [("initialize", "-")]  # `initialized` produces no line
    for name, src, mutated in corpus():
        requests.append({"jsonrpc": "2.0", "method": "textDocument/didOpen",
                         "params": {"textDocument": {"uri": uri, "text": src}}})
        expected.append(("clean-open", name))
        requests.append({"jsonrpc": "2.0", "method": "textDocument/didChange",
                         "params": {"textDocument": {"uri": uri},
                                    "contentChanges": [{"text": mutated}]}})
        expected.append(("broken-change", name))
        requests.append({"jsonrpc": "2.0", "method": "textDocument/didChange",
                         "params": {"textDocument": {"uri": uri},
                                    "contentChanges": [{"text": src}]}})
        expected.append(("clean-change", name))
    requests.append({"jsonrpc": "2.0", "id": 2, "method": "shutdown"})
    expected.append(("shutdown", "-"))
    requests.append({"jsonrpc": "2.0", "method": "exit"})

    lines = run_serve(binary, requests)
    if len(lines) != len(expected):
        fail(f"lsp: expected {len(expected)} responses, got {len(lines)}")

    for v, (kind, name) in zip(lines, expected):
        if kind == "initialize":
            if "capabilities" not in v.get("result", {}):
                fail(f"initialize: no capabilities: {v}")
            continue
        if kind == "shutdown":
            if v.get("result", "missing") is not None:
                fail(f"shutdown: expected null result: {v}")
            continue
        if v.get("method") != "textDocument/publishDiagnostics":
            fail(f"{name}/{kind}: expected publishDiagnostics: {v}")
        params = v["params"]
        if params.get("uri") != uri:
            fail(f"{name}/{kind}: wrong uri: {v}")
        rsc = v.get("rsc", {})
        if kind in ("clean-open", "clean-change"):
            if lsp_errors(params) or rsc.get("verified") is not True:
                fail(f"{name}: clean text published error diagnostics: {v}")
            assert_lsp_diagnostics(name, params)
        else:
            if not lsp_errors(params) or rsc.get("verified") is not False:
                fail(f"{name}: seeded bug published no diagnostics: {v}")
            assert_lsp_diagnostics(name, params)
            if rsc.get("bundles", 0) > 1 and rsc.get("reused", 0) == 0:
                fail(f"{name}: broken change reused nothing: {v}")
        print(f"serve_smoke: ok {name:<14} {kind:<13} "
              f"reused={rsc.get('reused', '-')}/{rsc.get('bundles', '-')} "
              f"diags={len(params['diagnostics'])}")
    print("serve_smoke: lsp leg PASS")


def cache_bound_leg(binary, cap=16, rounds=3):
    """A long edit script with a tiny VC cache: verdicts stay correct,
    the cache stays bounded, and evictions are reported."""
    requests = []
    expected = []  # (kind, name)
    for _ in range(rounds):
        for name, src, mutated in corpus():
            requests.append({"cmd": "load", "source": src})
            expected.append(("clean", name))
            requests.append({"cmd": "edit", "source": mutated})
            expected.append(("broken", name))
            requests.append({"cmd": "edit", "source": src})
            expected.append(("clean", name))
    requests.append({"cmd": "stats"})
    expected.append(("stats", "-"))
    requests.append({"cmd": "quit"})
    expected.append(("quit", "-"))

    lines = run_serve(binary, requests, env={"RSC_CACHE_CAP": str(cap)})
    if len(lines) != len(expected):
        fail(f"cache-bound: expected {len(expected)} responses, got {len(lines)}")
    evictions = None
    for v, (kind, name) in zip(lines, expected):
        if not v.get("ok"):
            fail(f"cache-bound {name}/{kind}: not ok: {v}")
        if kind == "clean" and v["verified"] is not True:
            fail(f"cache-bound {name}: clean text did not verify under cap: {v}")
        if kind == "broken" and v["verified"] is not False:
            fail(f"cache-bound {name}: seeded bug not rejected under cap: {v}")
        if kind == "stats":
            if v["cache_entries"] > cap:
                fail(f"cache-bound: {v['cache_entries']} entries exceed cap {cap}: {v}")
            evictions = v.get("cache_evictions", 0)
    if not evictions:
        fail("cache-bound: a long edit script under a tiny cap must evict")
    print(f"serve_smoke: cache-bound leg PASS "
          f"(cap={cap}, evictions={evictions})")


def metrics_leg(binary):
    """Observability surface: per-check timing_ms, stats with the folded
    timing summary, and the metrics counters/cache/latency object."""
    name, src, mutated = corpus()[0]
    requests = [
        {"cmd": "load", "source": src},
        {"cmd": "edit", "source": mutated},
        {"cmd": "edit", "source": src},
        {"cmd": "stats"},
        {"cmd": "metrics"},
        {"cmd": "quit"},
    ]
    lines = run_serve(binary, requests)
    if len(lines) != 6:
        fail(f"metrics: expected 6 responses, got {len(lines)}")
    checks, stats, metrics = lines[:3], lines[3], lines[4]

    for i, v in enumerate(checks):
        if not v.get("ok"):
            fail(f"metrics: check {i} not ok: {v}")
        timing = v.get("timing_ms")
        if not isinstance(timing, dict) or "solve" not in timing:
            fail(f"metrics: check {i} has no per-phase timing_ms: {v}")

    # stats: one object the harness can assert sessions + skips + timing
    # on (importers_skipped is cumulative, 0 here — no imports).
    if stats.get("importers_skipped") != 0:
        fail(f"metrics: stats.importers_skipped missing/wrong: {stats}")
    summary = stats.get("timing")
    if not isinstance(summary, dict) or summary.get("checks") != 3:
        fail(f"metrics: stats.timing did not count 3 checks: {stats}")

    if not metrics.get("ok") or metrics.get("cmd") != "metrics":
        fail(f"metrics: bad metrics response: {metrics}")
    counters = metrics.get("counters", {})
    if counters.get("checks_total") != 3 or counters.get("checks_failed_total") != 1:
        fail(f"metrics: counters did not track the session: {counters}")
    if counters.get("bundles_total", 0) <= counters.get("bundles_solved_total", 0):
        fail(f"metrics: edits must reuse bundles: {counters}")
    cache = metrics.get("cache", {})
    if cache.get("hits", 0) + cache.get("misses", 0) <= 0 or "hit_rate" not in cache:
        fail(f"metrics: cache counters missing: {cache}")
    timing = metrics.get("timing", {})
    if timing.get("check_p50_us", 0) <= 0 or timing.get("check_p99_us", 0) < \
            timing.get("check_p50_us", 0):
        fail(f"metrics: bad latency percentiles: {timing}")
    phases = timing.get("phases_ms", {})
    missing = {"parse", "ssa", "constraint-gen", "partition", "solve",
               "solve-bundle", "smt-query", "check"} - set(phases)
    if missing:
        fail(f"metrics: phases_ms missing taxonomy phases {missing}: {phases}")
    print(f"serve_smoke: metrics leg PASS (p50={timing['check_p50_us']}us, "
          f"phases={len(phases)})")


def disk_cache_leg(binary):
    """Persistent VC cache round-trip: a cold batch check populates the
    disk tier, the process exits, and a *new* process re-checking the
    same corpus must serve every bundle verdict from disk — zero
    smt-query spans, every bundle reused, identical verdicts."""
    import shutil
    import tempfile

    cache_dir = tempfile.mkdtemp(prefix="rsc-vcc-smoke-")
    files = sorted(str(p) for p in (ROOT / "benchmarks").glob("*.rsc"))
    if not files:
        fail("disk-cache: no benchmark files found")

    def batch(tag):
        proc = subprocess.run(
            [binary, "--vc-cache", cache_dir, "--stats-json"] + files,
            capture_output=True, text=True, cwd=ROOT,
        )
        if proc.returncode != 0:
            fail(f"disk-cache {tag}: rsc exited {proc.returncode}: "
                 f"{proc.stderr[-500:]}")
        return json.loads(proc.stdout)

    try:
        cold = batch("cold")
        # Process exit above is the "kill": only the directory survives.
        warm = batch("warm")

        cold_queries = warm_queries = 0
        for c, w in zip(cold["files"], warm["files"]):
            name = c["file"]
            if c["file"] != w["file"] or c["ok"] != w["ok"]:
                fail(f"disk-cache {name}: warm verdict differs: "
                     f"{c['ok']} vs {w['ok']}")
            # Structural stats (constraints, κ-vars, liquid query counts)
            # are pure functions of the program — identical either way.
            if c["stats"] != {**w["stats"], "bundles_reused": 0}:
                fail(f"disk-cache {name}: warm stats drifted: "
                     f"{c['stats']} vs {w['stats']}")
            if w["stats"]["bundles_reused"] != w["stats"]["bundles"]:
                fail(f"disk-cache {name}: warm run did not reuse every "
                     f"bundle: {w['stats']}")
            cq = {p["name"]: p["count"] for p in c["phases"]}.get("smt-query", 0)
            wq = {p["name"]: p["count"] for p in w["phases"]}.get("smt-query", 0)
            cold_queries += cq
            warm_queries += wq
            print(f"serve_smoke: ok {Path(name).stem:<14} disk-cache "
                  f"smt-queries {cq} -> {wq}, reused "
                  f"{w['stats']['bundles_reused']}/{w['stats']['bundles']}")
        if cold_queries == 0:
            fail("disk-cache: cold run issued no smt queries (broken stats?)")
        if warm_queries != 0:
            fail(f"disk-cache: warm run still issued {warm_queries} smt "
                 "queries; disk tier is not serving verdicts")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    print(f"serve_smoke: disk-cache leg PASS "
          f"(smt-queries {cold_queries} cold -> 0 warm)")


def multi_file_leg(binary):
    """URIs over one workspace: a non-exported edit skips the importer
    entirely; a signature edit re-checks it; same-named private helpers
    in two files don't collide; whole-document-range didChange works."""
    lib_uri = "file:///w/lib.rsc"
    app_uri = "file:///w/app.rsc"
    lib = (
        "type nat = {v: number | 0 <= v};\n"
        "export function step(x: number): nat {\n"
        "    if (x < 0) { return 0; }\n"
        "    return x + 1;\n"
        "}\n"
        "function helper(y: number): number { return y; }\n"
    )
    app = (
        'import {step} from "./lib.rsc";\n'
        "function use(k: number): {v: number | 0 <= v} {\n"
        "    return step(k);\n"
        "}\n"
    )
    body_edit = lib.replace("return y;", "return y + 1;")
    sig_edit = lib.replace(
        "export function step(x: number): nat {",
        "export function step(x: number): {v: number | 0 <= v && x < v} {",
    )
    # Collision workspace: both files declare a non-exported `helper`
    # with *contradictory* refinements — they only verify if each file
    # resolves `helper` to its own module's declaration.
    col_lib_uri = "file:///w/collide_lib.rsc"
    col_app_uri = "file:///w/collide_app.rsc"
    col_lib = (
        "export function inc(x: number): {v: number | x < v} "
        "{ return helper(x); }\n"
        "function helper(y: number): {v: number | y < v} { return y + 1; }\n"
    )
    col_app = (
        'import {inc} from "./collide_lib.rsc";\n'
        "function helper(y: number): {v: number | v <= y} { return y - 1; }\n"
        "function dec(x: number): {v: number | v <= x} { return helper(x); }\n"
        "function use(k: number): {v: number | k < v} { return inc(k); }\n"
    )
    col_break = col_app.replace("return y - 1;", "return y + 1;")

    def open_(uri, text):
        return {"jsonrpc": "2.0", "method": "textDocument/didOpen",
                "params": {"textDocument": {"uri": uri, "text": text}}}

    def change(uri, text):
        return {"jsonrpc": "2.0", "method": "textDocument/didChange",
                "params": {"textDocument": {"uri": uri},
                           "contentChanges": [{"text": text}]}}

    def change_ranged(uri, start, end, text, req_id=None):
        req = {"jsonrpc": "2.0", "method": "textDocument/didChange",
               "params": {"textDocument": {"uri": uri},
                          "contentChanges": [{
                              "range": {
                                  "start": {"line": start[0], "character": start[1]},
                                  "end": {"line": end[0], "character": end[1]},
                              },
                              "text": text}]}}
        if req_id is not None:
            req["id"] = req_id
        return req

    requests = [
        {"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}},
        open_(lib_uri, lib),          # 1 line: publish lib
        open_(app_uri, app),          # 1 line: publish app (lib is open)
        change(lib_uri, body_edit),   # 1 line: lib only, importer skipped
        change(lib_uri, sig_edit),    # 2 lines: lib, then importer app
        open_(col_lib_uri, col_lib),  # 1 line: publish collide_lib
        open_(col_app_uri, col_app),  # 1 line: publish collide_app
        # Whole-document range (end past EOF counts as covering): the
        # breaking edit must be applied, not dropped.
        change_ranged(col_app_uri, (0, 0), (999, 0), col_break),
        # Genuinely partial range (first line only), sent as a request
        # so the refusal comes back as a JSON-RPC error line.
        change_ranged(col_app_uri, (0, 0), (1, 0), "// nope\n", req_id=3),
        change_ranged(col_app_uri, (0, 0), (999, 0), col_app),
        {"jsonrpc": "2.0", "id": 2, "method": "shutdown"},
        {"jsonrpc": "2.0", "method": "exit"},
    ]
    lines = run_serve(binary, requests)
    if len(lines) != 12:
        fail(f"multi-file: expected 12 response lines, got {len(lines)}: {lines}")

    def expect_publish(v, uri, verified, step):
        if v.get("method") != "textDocument/publishDiagnostics":
            fail(f"multi-file/{step}: expected publishDiagnostics: {v}")
        if v["params"]["uri"] != uri:
            fail(f"multi-file/{step}: expected uri {uri}: {v}")
        if v["rsc"]["verified"] is not verified:
            fail(f"multi-file/{step}: expected verified={verified}: {v}")
        return v["rsc"]

    expect_publish(lines[1], lib_uri, True, "open-lib")
    expect_publish(lines[2], app_uri, True, "open-app")

    # Non-exported body edit in lib: nothing observable changed for the
    # importer, so its re-check is skipped entirely — one publish line
    # for lib, with the skip counted.
    rsc = expect_publish(lines[3], lib_uri, True, "body-edit-lib")
    if rsc.get("importers_skipped") != 1:
        fail(f"multi-file: body edit did not skip the importer: {rsc}")

    # Exported-signature edit: the importer must be re-checked with the
    # dependency named and exactly its importing unit dirty.
    rsc = expect_publish(lines[4], lib_uri, True, "sig-edit-lib")
    if rsc.get("importers_skipped") != 0:
        fail(f"multi-file: sig edit skipped the importer: {rsc}")
    rsc = expect_publish(lines[5], app_uri, True, "sig-edit-app")
    if rsc["deps_changed"] != [lib_uri]:
        fail(f"multi-file: sig edit did not flag the dependency: {rsc}")
    if "fun:use" not in rsc["dirty_own"]:
        fail(f"multi-file: sig edit did not dirty the importing unit: {rsc}")
    importer_rsc = rsc

    # Collision workspace: both files verify despite declaring the same
    # non-exported `helper` with contradictory refinements.
    expect_publish(lines[6], col_lib_uri, True, "open-collide-lib")
    expect_publish(lines[7], col_app_uri, True, "open-collide-app")

    # Whole-document-range didChange: applied (the broken helper now
    # violates its own refinement), then a partial range is refused,
    # then a covering range restores the clean text.
    expect_publish(lines[8], col_app_uri, False, "ranged-break")
    err = lines[9].get("error", {})
    if lines[9].get("id") != 3 or "full-document sync" not in err.get("message", ""):
        fail(f"multi-file: partial range not refused as InvalidParams: {lines[9]}")
    expect_publish(lines[10], col_app_uri, True, "ranged-restore")

    if lines[11].get("result", "missing") is not None:
        fail(f"multi-file: bad shutdown response: {lines[11]}")
    print("serve_smoke: multi-file leg PASS "
          f"(importer reuse={importer_rsc['reused']}/{importer_rsc['bundles']}, "
          "collision + ranged didChange ok)")


def main():
    check_in_sync()
    args = [a for a in sys.argv[1:]]
    legs = []
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--leg":
            if i + 1 >= len(args):
                fail("--leg expects a value (legacy | lsp | cache-bound "
                     "| multi-file | metrics | disk-cache)")
            legs.append(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) > 1:
        fail(f"unexpected extra arguments: {positional[1:]}")
    binary = positional[0] if positional else str(ROOT / "target/release/rsc")
    if not legs:
        legs = ["legacy", "lsp", "multi-file"]
    for leg in legs:
        if leg == "legacy":
            legacy_leg(binary)
        elif leg == "lsp":
            lsp_leg(binary)
        elif leg == "cache-bound":
            cache_bound_leg(binary)
        elif leg == "metrics":
            metrics_leg(binary)
        elif leg == "multi-file":
            multi_file_leg(binary)
        elif leg == "disk-cache":
            disk_cache_leg(binary)
        else:
            fail(f"unknown leg {leg!r}")
    print("serve_smoke: PASS")


if __name__ == "__main__":
    main()
