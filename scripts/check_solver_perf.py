#!/usr/bin/env python3
"""Gate cold-check solver performance against a committed baseline.

Usage:
    python3 scripts/check_solver_perf.py BASELINE.json CURRENT.json [--max-regress 0.20]

Both files are BENCH_cold.json shapes (see crates/bench/src/bin/bench_cold.rs).
The gate compares the `solve` phase time of every benchmark present in both
files and fails when the *geomean* ratio current/baseline exceeds
1 + max-regress (default: a 20% regression). Per-benchmark noise is expected
on shared CI runners; the geomean over the 7-program corpus is stable enough
to catch real solver-path regressions without flaking on one noisy sample.

It also gates the `smt_queries` count per benchmark: unlike wall time,
query counts are fully deterministic, so any single benchmark issuing more
than 1 + max-query-regress (default 10%) times its baseline queries fails —
that is the absint pre-pass (or the solver's query strategy) losing ground,
not runner noise.
"""

import argparse
import json
import math
import sys


def solve_us(bench: dict) -> int | None:
    for p in bench.get("phases", []):
        if p.get("name") == "solve":
            return p.get("total_us")
    return None


def load(path: str) -> tuple[dict, dict]:
    with open(path) as f:
        data = json.load(f)
    times, queries = {}, {}
    for b in data.get("benchmarks", []):
        us = solve_us(b)
        if us:
            times[b["name"]] = us
        q = b.get("smt_queries")
        if q is not None:
            queries[b["name"]] = q
    return times, queries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="maximum tolerated geomean slowdown (0.20 = 20%%)",
    )
    ap.add_argument(
        "--max-query-regress",
        type=float,
        default=0.10,
        help="maximum tolerated per-benchmark smt_queries growth (0.10 = 10%%)",
    )
    args = ap.parse_args()

    base, base_q = load(args.baseline)
    cur, cur_q = load(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        print("check_solver_perf: no common benchmarks between files", file=sys.stderr)
        return 2

    ratios = []
    for name in common:
        r = cur[name] / base[name]
        ratios.append(r)
        print(
            f"check_solver_perf: {name:14s} "
            f"base={base[name] / 1000:8.1f}ms cur={cur[name] / 1000:8.1f}ms "
            f"ratio={r:5.2f}"
        )
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    limit = 1.0 + args.max_regress
    time_ok = geomean <= limit
    print(
        f"check_solver_perf: geomean ratio {geomean:.3f} "
        f"(limit {limit:.2f}) over {len(common)} benchmarks: "
        f"{'PASS' if time_ok else 'FAIL'}"
    )

    # Query-count gate: deterministic, so per-benchmark with no geomean
    # smoothing. Old baselines without smt_queries skip the gate.
    queries_ok = True
    q_limit = 1.0 + args.max_query_regress
    for name in sorted(set(base_q) & set(cur_q)):
        if base_q[name] == 0:
            continue
        r = cur_q[name] / base_q[name]
        ok = r <= q_limit
        queries_ok = queries_ok and ok
        print(
            f"check_solver_perf: {name:14s} "
            f"queries base={base_q[name]:6d} cur={cur_q[name]:6d} "
            f"ratio={r:5.2f}{'' if ok else '  FAIL'}"
        )
    if not queries_ok:
        print(
            f"check_solver_perf: smt_queries grew past the {q_limit:.2f}x "
            f"per-benchmark limit"
        )
    return 0 if time_ok and queries_ok else 1


if __name__ == "__main__":
    sys.exit(main())
