#!/usr/bin/env python3
"""Gate cold-check solver performance against a committed baseline.

Usage:
    python3 scripts/check_solver_perf.py BASELINE.json CURRENT.json [--max-regress 0.20]

Both files are BENCH_cold.json shapes (see crates/bench/src/bin/bench_cold.rs).
The gate compares the `solve` phase time of every benchmark present in both
files and fails when the *geomean* ratio current/baseline exceeds
1 + max-regress (default: a 20% regression). Per-benchmark noise is expected
on shared CI runners; the geomean over the 7-program corpus is stable enough
to catch real solver-path regressions without flaking on one noisy sample.
"""

import argparse
import json
import math
import sys


def solve_us(bench: dict) -> int | None:
    for p in bench.get("phases", []):
        if p.get("name") == "solve":
            return p.get("total_us")
    return None


def load(path: str) -> dict:
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        us = solve_us(b)
        if us:
            out[b["name"]] = us
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="maximum tolerated geomean slowdown (0.20 = 20%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        print("check_solver_perf: no common benchmarks between files", file=sys.stderr)
        return 2

    ratios = []
    for name in common:
        r = cur[name] / base[name]
        ratios.append(r)
        print(
            f"check_solver_perf: {name:14s} "
            f"base={base[name] / 1000:8.1f}ms cur={cur[name] / 1000:8.1f}ms "
            f"ratio={r:5.2f}"
        )
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    limit = 1.0 + args.max_regress
    verdict = "PASS" if geomean <= limit else "FAIL"
    print(
        f"check_solver_perf: geomean ratio {geomean:.3f} "
        f"(limit {limit:.2f}) over {len(common)} benchmarks: {verdict}"
    )
    return 0 if geomean <= limit else 1


if __name__ == "__main__":
    sys.exit(main())
