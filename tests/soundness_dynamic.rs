//! Dynamic soundness (Theorems 2–5 + Corollary 4, tested end-to-end):
//! programs the checker verifies never hit runtime errors when executed,
//! on either semantics, and casts can be erased (the interpreters already
//! treat them as no-ops).

use rsc_core::{check_program, CheckerOptions};
use rsc_interp::{run_frsc, run_irsc, RuntimeError, Value};

const FUEL: u64 = 5_000_000;

/// Verifies, runs both semantics, and checks that no runtime error occurs
/// and both agree.
fn verified_and_safe(src: &str) -> Value {
    let r = check_program(src, CheckerOptions::default());
    assert!(
        r.ok(),
        "program should verify: {:?}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
    let prog = rsc_syntax::parse_program(src).unwrap();
    let ir = rsc_ssa::transform_program(&prog).unwrap();
    let a = run_frsc(&prog, FUEL);
    let b = run_irsc(&ir, FUEL);
    assert_eq!(a, b, "semantics disagree");
    match a {
        Ok(v) => v,
        Err(e) => panic!("verified program hit a runtime error: {e}"),
    }
}

#[test]
fn verified_reduce_runs_safely() {
    let v = verified_and_safe(
        r#"
        type nat = {v: number | 0 <= v};
        type idx<a> = {v: nat | v < len(a)};
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
        function minIndex(a: number[]): number {
            if (a.length <= 0) { return -1; }
            function step(min, cur, i) {
                return cur < a[min] ? i : min;
            }
            return reduce(a, step, 0);
        }
        return minIndex([9, 3, 7, 1, 8]);
    "#,
    );
    assert_eq!(v, Value::Num(3));
}

#[test]
fn verified_overloads_run_safely() {
    let v = verified_and_safe(
        r#"
        type nat = {v: number | 0 <= v};
        type idx<a> = {v: nat | v < len(a)};
        type NEArray<T> = {v: T[] | 0 < len(v)};
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
        sig $reduce : <A>(a: NEArray<A>, f: (A, A, idx<a>) => A) => A;
        sig $reduce : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
        function $reduce(a, f, x) {
            if (arguments.length === 3) { return reduce(a, f, x); }
            return reduce(a, f, a[0]);
        }
        function add(p, q, i) { return p + q; }
        return $reduce([1, 2, 3], add) + $reduce([1, 2, 3], add, 10);
    "#,
    );
    // Without `slice`, the 2-argument overload seeds with a[0] and then
    // folds the whole array: (1+1+2+3) + (10+1+2+3) = 23.
    assert_eq!(v, Value::Num(23));
}

#[test]
fn verified_class_runs_safely() {
    let v = verified_and_safe(
        r#"
        type nat = {v: number | 0 <= v};
        type pos = {v: number | 0 < v};
        type ArrayN<T, n> = {v: T[] | len(v) = n};
        type grid<w, h> = ArrayN<number, (w + 2) * (h + 2)>;
        type okW = {v: nat | v <= this.w};
        type okH = {v: nat | v <= this.h};
        declare gridIdxThm : (x: nat, y: nat, w: {v: number | x <= v}, h: {v: number | y <= v})
            => {v: boolean | 0 <= x + 1 + (y + 1) * (w + 2)
                          && x + 1 + (y + 1) * (w + 2) < (w + 2) * (h + 2)};
        class Field {
            immutable w : pos;
            immutable h : pos;
            dens : grid<this.w, this.h>;
            constructor(w: pos, h: pos, d: grid<w, h>) {
                this.h = h; this.w = w; this.dens = d;
            }
            setDensity(x: okW, y: okH, d: number) {
                var t = gridIdxThm(x, y, this.w, this.h);
                var rowS = this.w + 2;
                this.dens[x + 1 + (y + 1) * rowS] = d;
            }
            @ReadOnly getDensity(x: okW, y: okH): number {
                var t = gridIdxThm(x, y, this.w, this.h);
                var rowS = this.w + 2;
                return this.dens[x + 1 + (y + 1) * rowS];
            }
        }
        var z = new Field(3, 7, new Array(45));
        z.setDensity(2, 5, 42);
        return z.getDensity(2, 5);
    "#,
    );
    assert_eq!(v, Value::Num(42));
}

#[test]
fn verified_reflection_runs_safely() {
    let v = verified_and_safe(
        r#"
        function incr(x: number + undefined): number {
            var r = 1;
            if (typeof x === "number") { r = r + x; }
            return r;
        }
        return incr(41) + incr(undefined);
    "#,
    );
    assert_eq!(v, Value::Num(43));
}

/// The corpus `demo` entry points run without errors on both semantics.
#[test]
fn corpus_demos_run_safely() {
    for (name, call) in [
        ("navier-stokes", "return demo();"),
        ("splay", "return demo();"),
        ("richards", "return demo();"),
        ("raytrace", "return demo();"),
        ("transducers", "return demo();"),
        ("d3-arrays", "return demo();"),
        ("tsc-checker", "return demo([3, 42, 0 - 1, 7]);"),
    ] {
        let src = format!("{}\n{call}", rsc_bench::load_benchmark(name).unwrap());
        let prog = rsc_syntax::parse_program(&src).unwrap();
        let ir = rsc_ssa::transform_program(&prog).unwrap();
        let a = run_frsc(&prog, FUEL);
        let b = run_irsc(&ir, FUEL);
        assert_eq!(a, b, "{name}: semantics disagree");
        match a {
            Ok(_) => {}
            Err(RuntimeError::OutOfFuel) => panic!("{name}: demo diverged"),
            Err(e) => panic!("{name}: verified benchmark hit a runtime error: {e}"),
        }
    }
}
