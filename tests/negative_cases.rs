//! Unsound TypeScript features that RSC rejects (§4.1) and mutability
//! violations (§4.4).

use rsc_core::{check_program, CheckerOptions};

fn rejected(src: &str) {
    let r = check_program(src, CheckerOptions::default());
    assert!(!r.ok(), "program should be rejected:\n{src}");
}

fn accepted(src: &str) {
    let r = check_program(src, CheckerOptions::default());
    assert!(
        r.ok(),
        "program should verify, got {:?}:\n{src}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn undefined_plus_one_rejected() {
    // TS accepts `var x = undefined; var y = x + 1;` — RSC rejects (§4.1).
    rejected("var x = undefined; var y = x + 1;");
}

#[test]
fn null_is_not_bottom() {
    rejected(
        r#"
        class P { x : number; constructor(x: number) { this.x = x; } }
        function f(p: P): number { return p.x; }
        var r = f(null);
        "#,
    );
}

#[test]
fn property_access_on_possibly_null_rejected() {
    rejected(
        r#"
        class P { x : number; constructor(x: number) { this.x = x; } }
        function f(p: P + null): number { return p.x; }
        "#,
    );
}

#[test]
fn narrowed_property_access_accepted() {
    accepted(
        r#"
        class P { x : number; constructor(x: number) { this.x = x; } }
        function f(p: P + null): number {
            if (p === null) { return 0; }
            return p.x;
        }
        "#,
    );
}

#[test]
fn readonly_method_cannot_mutate() {
    rejected(
        r#"
        class C {
            n : number;
            constructor(n: number) { this.n = n; }
            @ReadOnly bad() { this.n = 5; }
        }
        "#,
    );
}

#[test]
fn mutable_method_on_readonly_receiver_rejected() {
    rejected(
        r#"
        class C {
            n : number;
            constructor(n: number) { this.n = n; }
            bump() { this.n = this.n + 1; }
            @ReadOnly peek(): number { return 0; }
        }
        function f(c: C<RO>) { c.bump(); }
        "#,
    );
}

#[test]
fn readonly_method_on_readonly_receiver_accepted() {
    accepted(
        r#"
        class C {
            n : number;
            constructor(n: number) { this.n = n; }
            @ReadOnly peek(): number { return 0; }
        }
        function f(c: C<RO>): number { return c.peek(); }
        "#,
    );
}

#[test]
fn ctor_must_initialize_all_fields() {
    rejected(
        r#"
        class C {
            a : number;
            b : number;
            constructor(a: number) { this.a = a; }
        }
        "#,
    );
}

#[test]
fn ctor_invariant_violation_rejected() {
    rejected(
        r#"
        type pos = {v: number | 0 < v};
        class C {
            immutable p : pos;
            constructor(x: number) { this.p = x; }
        }
        "#,
    );
}

#[test]
fn array_write_on_readonly_rejected() {
    rejected("function f(a: Array<RO, number>) { if (0 < a.length) { a[0] = 1; } }");
}

#[test]
fn push_outside_fragment() {
    rejected("function f(a: Array<MU, number>) { a.push(1); }");
}

#[test]
fn this_read_in_ctor_rejected() {
    rejected(
        r#"
        class C {
            a : number;
            b : number;
            constructor(x: number) { this.a = x; this.b = this.a + 1; }
        }
        "#,
    );
}

#[test]
fn division_by_possibly_zero_rejected() {
    rejected("function f(x: number, y: number): number { return x / y; }");
}

#[test]
fn division_by_nonzero_accepted() {
    accepted("function f(x: number, y: {v: number | 0 < v}): number { return x / y; }");
}

#[test]
fn bad_overload_body_rejected() {
    // The 2-argument overload promises A but the body returns the array.
    rejected(
        r#"
        sig f : (x: number, y: number) => number;
        sig f : (x: number) => boolean;
        function f(x, y) {
            if (arguments.length === 2) { return x + y; }
            return x;
        }
        "#,
    );
}

#[test]
fn dependent_postcondition_enforced() {
    rejected("function f(x: number): {v: number | x < v} { return x; }");
    accepted("function f(x: number): {v: number | x < v} { return x + 1; }");
}
