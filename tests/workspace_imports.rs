//! End-to-end tests for the multi-file workspace model: per-URI
//! document sessions in `rsc serve`, import-closure equivalence with
//! the batch checker, and import-cycle diagnostics.

use rsc_core::{check_program, CheckerOptions};
use rsc_incr::{Json, Serve, Workspace};

const LIB: &str = "type nat = {v: number | 0 <= v};\n\
export function step(x: number): nat {\n\
    if (x < 0) { return 0; }\n\
    return x + 1;\n\
}\n\
function helper(y: number): number { return y; }\n";

const APP: &str = "import {step} from \"./lib.rsc\";\n\
function use(k: number): {v: number | 0 <= v} {\n\
    return step(k);\n\
}\n";

fn did_open(uri: &str, text: &str) -> String {
    format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":{},"text":{}}}}}}}"#,
        Json::str(uri),
        Json::str(text)
    )
}

fn did_change(uri: &str, text: &str) -> String {
    format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":{}}},"contentChanges":[{{"text":{}}}]}}}}"#,
        Json::str(uri),
        Json::str(text)
    )
}

fn rsc_of(line: &Json) -> &Json {
    line.get("rsc").expect("rsc counters object")
}

/// The headline PR-5 regression: a two-file editing session (edit a,
/// edit b, edit a again) reuses retained bundles on every step — no
/// cold re-check on document switch.
#[test]
fn two_file_editing_session_stays_warm_on_every_step() {
    let ua = "file:///w/a.rsc";
    let ub = "file:///w/b.rsc";
    let a = "type nat = {v: number | 0 <= v};\n\
             function fa(x: number): nat { if (x < 0) { return 0 - x; } return x; }\n\
             function ga(x: number): nat { if (x < 0) { return 0; } return x + 5; }\n";
    let b = a.replace("fa", "fb").replace("ga", "gb");
    let mut serve = Serve::new(CheckerOptions::default());
    serve.handle(&did_open(ua, a));
    serve.handle(&did_open(ub, &b));

    // Step 1: edit a (only `fa`'s body — `ga`'s bundle must be reused).
    let (resp, _) = serve.handle(&did_change(
        ua,
        &a.replace("return 0 - x;", "return 1 - x;"),
    ));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 1 re-checked cold: {resp}"
    );
    // Step 2: edit b.
    let (resp, _) = serve.handle(&did_change(
        ub,
        &b.replace("return 0 - x;", "return 2 - x;"),
    ));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 2 re-checked cold: {resp}"
    );
    // Step 3: edit a again.
    let (resp, _) = serve.handle(&did_change(ua, a));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 3 re-checked cold: {resp}"
    );
    // And an identical resend hits the whole-program fast path.
    let (resp, _) = serve.handle(&did_change(ua, a));
    let v = Json::parse(&resp).unwrap();
    assert_eq!(
        rsc_of(&v).get("fast_path"),
        Some(&Json::Bool(true)),
        "{resp}"
    );
}

/// A workspace check of `app.rsc` + `lib.rsc` is byte-identical to
/// checking the concatenated program with the batch checker.
#[test]
fn import_closure_equals_concatenated_program() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let report = ws.update("app.rsc", APP.to_string()).remove(0);
    assert_eq!(report.merged.files.len(), 2, "closure must include lib");

    // The merged text is the dependency-first concatenation…
    let concatenated = format!("{LIB}{APP}");
    assert_eq!(report.merged.text, concatenated);

    // …and the diagnostics/verdict are byte-identical to a cold batch
    // check of that text.
    let cold = check_program(&concatenated, CheckerOptions::default());
    let render = |ds: &[rsc_core::Diagnostic]| {
        ds.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render(&report.outcome.result.diagnostics),
        render(&cold.diagnostics)
    );
    assert_eq!(report.outcome.result.ok(), cold.ok());
    assert!(report.outcome.result.ok());

    // Same equivalence on a failing closure.
    let bad_app = APP.replace("return step(k);", "return step(k) - 1;");
    let report = ws.update("app.rsc", bad_app.clone()).remove(0);
    let cold = check_program(&format!("{LIB}{bad_app}"), CheckerOptions::default());
    assert_eq!(
        render(&report.outcome.result.diagnostics),
        render(&cold.diagnostics)
    );
    assert!(!report.outcome.result.ok());
}

/// An import cycle is a real diagnostic naming the cycle, over serve.
#[test]
fn import_cycle_diagnostic_over_serve() {
    let ua = "file:///w/a.rsc";
    let ub = "file:///w/b.rsc";
    let a = "import {f} from \"./b.rsc\";\nexport function g(x: number): number { return f(x); }\n";
    let b = "import {g} from \"./a.rsc\";\nexport function f(x: number): number { return g(x); }\n";
    let mut serve = Serve::new(CheckerOptions::default());
    serve.handle(&did_open(ua, a));
    let (resp, _) = serve.handle(&did_open(ub, b));
    // b's check sees the cycle and publishes it as a diagnostic.
    let first = Json::parse(resp.lines().next().unwrap()).unwrap();
    assert_eq!(
        rsc_of(&first).get("verified"),
        Some(&Json::Bool(false)),
        "{resp}"
    );
    let diags = first
        .get("params")
        .and_then(|p| p.get("diagnostics"))
        .cloned();
    match diags {
        Some(Json::Arr(ds)) if !ds.is_empty() => {
            let msg = ds[0].get("message").and_then(Json::as_str).unwrap();
            assert!(msg.contains("import cycle"), "{msg}");
        }
        other => panic!("expected a cycle diagnostic, got {other:?}"),
    }
    // Breaking the cycle recovers both documents.
    let (resp, _) = serve.handle(&did_change(
        ub,
        "export function f(x: number): number { return x; }\n",
    ));
    for line in resp.lines() {
        let v = Json::parse(line).unwrap();
        assert_eq!(
            rsc_of(&v).get("verified"),
            Some(&Json::Bool(true)),
            "{line}"
        );
    }
}

/// A missing export is blamed at the importing name, with the module
/// named in the message.
#[test]
fn missing_export_diagnostic() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let report = ws
        .update(
            "app.rsc",
            "import {helper} from \"./lib.rsc\";\nvar z = helper(1);\n".to_string(),
        )
        .remove(0);
    assert!(!report.outcome.result.ok());
    let msg = &report.outcome.result.diagnostics[0].message;
    assert!(msg.contains("does not export `helper`"), "{msg}");
    assert!(msg.contains("lib.rsc"), "{msg}");
}
