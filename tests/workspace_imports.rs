//! End-to-end tests for the multi-file workspace model: per-URI
//! document sessions in `rsc serve`, import-closure equivalence with a
//! cold check of the module-qualified merged program, per-module
//! namespacing (the cross-file collision matrix), and import-cycle
//! diagnostics.

use rsc_core::{check_program_ast, CheckerOptions};
use rsc_incr::{qualified_program, resolve_closure, Json, Merged, Serve, Workspace};

const LIB: &str = "type nat = {v: number | 0 <= v};\n\
export function step(x: number): nat {\n\
    if (x < 0) { return 0; }\n\
    return x + 1;\n\
}\n\
function helper(y: number): number { return y; }\n";

const APP: &str = "import {step} from \"./lib.rsc\";\n\
function use(k: number): {v: number | 0 <= v} {\n\
    return step(k);\n\
}\n";

fn did_open(uri: &str, text: &str) -> String {
    format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":{},"text":{}}}}}}}"#,
        Json::str(uri),
        Json::str(text)
    )
}

fn did_change(uri: &str, text: &str) -> String {
    format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":{}}},"contentChanges":[{{"text":{}}}]}}}}"#,
        Json::str(uri),
        Json::str(text)
    )
}

fn rsc_of(line: &Json) -> &Json {
    line.get("rsc").expect("rsc counters object")
}

/// The headline PR-5 regression: a two-file editing session (edit a,
/// edit b, edit a again) reuses retained bundles on every step — no
/// cold re-check on document switch.
#[test]
fn two_file_editing_session_stays_warm_on_every_step() {
    let ua = "file:///w/a.rsc";
    let ub = "file:///w/b.rsc";
    let a = "type nat = {v: number | 0 <= v};\n\
             function fa(x: number): nat { if (x < 0) { return 0 - x; } return x; }\n\
             function ga(x: number): nat { if (x < 0) { return 0; } return x + 5; }\n";
    let b = a.replace("fa", "fb").replace("ga", "gb");
    let mut serve = Serve::new(CheckerOptions::default());
    serve.handle(&did_open(ua, a));
    serve.handle(&did_open(ub, &b));

    // Step 1: edit a (only `fa`'s body — `ga`'s bundle must be reused).
    let (resp, _) = serve.handle(&did_change(
        ua,
        &a.replace("return 0 - x;", "return 1 - x;"),
    ));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 1 re-checked cold: {resp}"
    );
    // Step 2: edit b.
    let (resp, _) = serve.handle(&did_change(
        ub,
        &b.replace("return 0 - x;", "return 2 - x;"),
    ));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 2 re-checked cold: {resp}"
    );
    // Step 3: edit a again.
    let (resp, _) = serve.handle(&did_change(ua, a));
    let v = Json::parse(&resp).unwrap();
    assert!(
        rsc_of(&v).get("reused").and_then(Json::as_f64).unwrap() > 0.0,
        "step 3 re-checked cold: {resp}"
    );
    // And an identical resend hits the whole-program fast path.
    let (resp, _) = serve.handle(&did_change(ua, a));
    let v = Json::parse(&resp).unwrap();
    assert_eq!(
        rsc_of(&v).get("fast_path"),
        Some(&Json::Bool(true)),
        "{resp}"
    );
}

/// A cold check of the module-qualified merged program for an
/// `app.rsc` closure built from the two given texts.
fn cold_qualified(app_text: &str) -> rsc_core::CheckResult {
    let app_text = app_text.to_string();
    let mut lookup = |name: &str| match name {
        "lib.rsc" => Some(LIB.to_string()),
        "app.rsc" => Some(app_text.clone()),
        _ => None,
    };
    let files = resolve_closure("app.rsc", &mut lookup).expect("closure resolves");
    let merged = Merged::build(&files);
    let prog = qualified_program(&merged, &files).expect("closure qualifies");
    check_program_ast(&prog, CheckerOptions::default())
}

fn render(ds: &[rsc_core::Diagnostic]) -> String {
    ds.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// A workspace check of `app.rsc` + `lib.rsc` is byte-identical to a
/// cold check of the module-qualified merged program — the semantics
/// the workspace is defined to implement.
#[test]
fn import_closure_equals_qualified_merged_program() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let report = ws.update("app.rsc", APP.to_string()).remove(0);
    assert_eq!(report.merged.files.len(), 2, "closure must include lib");

    // The merged text is still the dependency-first concatenation
    // (qualification renames ASTs, not the region map)…
    let concatenated = format!("{LIB}{APP}");
    assert_eq!(report.merged.text, concatenated);

    // …and the diagnostics/verdict are byte-identical to a cold check
    // of the qualified merged program.
    let cold = cold_qualified(APP);
    assert_eq!(
        render(&report.outcome.result.diagnostics),
        render(&cold.diagnostics)
    );
    assert_eq!(report.outcome.result.ok(), cold.ok());
    assert!(report.outcome.result.ok());

    // Same equivalence on a failing closure.
    let bad_app = APP.replace("return step(k);", "return step(k) - 1;");
    let report = ws.update("app.rsc", bad_app.clone()).remove(0);
    let cold = cold_qualified(&bad_app);
    assert_eq!(
        render(&report.outcome.result.diagnostics),
        render(&cold.diagnostics)
    );
    assert!(!report.outcome.result.ok());
}

// ------------------------------------------------ collision matrix ---

/// Two modules declaring the same non-exported `helper` with
/// *different* semantics: each caller verifies against its own
/// module's helper. (Either direction of accidental capture makes one
/// of the two postconditions unprovable, so passing proves real
/// per-module namespacing.)
#[test]
fn same_named_private_helpers_do_not_collide() {
    let a = "export function inc(x: number): {v: number | x < v} { return helper(x); }\n\
             function helper(y: number): {v: number | y < v} { return y + 1; }\n";
    let b = "import {inc} from \"./a.rsc\";\n\
             function helper(y: number): {v: number | v <= y} { return y - 1; }\n\
             function dec(x: number): {v: number | v <= x} { return helper(x); }\n";
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("a.rsc", a.to_string());
    let report = ws.update("b.rsc", b.to_string()).remove(0);
    assert_eq!(report.merged.files.len(), 2);
    assert!(
        report.outcome.result.ok(),
        "{}",
        render(&report.outcome.result.diagnostics)
    );
}

/// Two modules declaring the same class name: each module's field
/// accesses resolve against its own class table entry.
#[test]
fn same_named_classes_do_not_collide() {
    let a = "export class Pair { x : number; constructor(x: number) { this.x = x; } }\n\
             export function one(): number { return 1; }\n";
    let b = "import {one} from \"./a.rsc\";\n\
             class Pair { y : number; constructor(y: number) { this.y = y; } }\n\
             function get(p: Pair): number { return p.y + one(); }\n";
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("a.rsc", a.to_string());
    let report = ws.update("b.rsc", b.to_string()).remove(0);
    assert!(
        report.outcome.result.ok(),
        "{}",
        render(&report.outcome.result.diagnostics)
    );
}

/// Referencing another module's name without importing it is a spanned
/// diagnostic at the use site, naming the *source* identifier — never
/// a mangled name, and never silent capture.
#[test]
fn unimported_cross_module_reference_is_rejected_at_the_use_site() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let bad =
        "import {step} from \"./lib.rsc\";\nfunction go(k: number): number { return helper(k); }\n";
    let report = ws.update("app.rsc", bad.to_string()).remove(0);
    assert!(!report.outcome.result.ok());
    let d = &report.outcome.result.diagnostics[0];
    assert!(
        d.message.contains("cannot find name `helper`"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("declared in `lib.rsc` but not imported"),
        "{}",
        d.message
    );
    // Blamed at the identifier itself, in app.rsc's own coordinates.
    assert_eq!(&bad[d.span.lo as usize..d.span.hi as usize], "helper");
    assert_eq!(d.span.line, 2);
    // Nothing user-visible carries a module-qualified name.
    assert!(!d.message.contains('$'), "{}", d.message);
}

/// A module that imports a name *and* declares its own of the same
/// name uses its own declaration (import-then-shadow): the local
/// `step` has a stronger postcondition than lib's, and the caller's
/// obligation only follows from the local one.
#[test]
fn own_declaration_shadows_a_same_named_import() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let app = "import {step} from \"./lib.rsc\";\n\
        function step(x: number): {v: number | 10 <= v} { return 10; }\n\
        function use(k: number): {v: number | 10 <= v} { return step(k); }\n";
    let report = ws.update("app.rsc", app.to_string()).remove(0);
    assert!(
        report.outcome.result.ok(),
        "{}",
        render(&report.outcome.result.diagnostics)
    );
}

/// Module ids are name-keyed, not positional: bringing an unrelated
/// module into the closure re-solves **zero** bundles in the untouched
/// modules. (Positional or content-keyed ids would rename every
/// qualified symbol in the merged program and invalidate every
/// retained fingerprint.) The added module carries plain base-type
/// signatures only — a refined signature would mine new qualifiers,
/// which legitimately changes every bundle's solving context.
#[test]
fn adding_an_unrelated_module_resolves_zero_bundles_in_untouched_modules() {
    let extra = "export function bump(x: number): number { return x + 1; }\n\
                 function helper(q: number): number { return q; }\n";
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    ws.update("extra.rsc", extra.to_string());
    let before = ws.update("app.rsc", APP.to_string()).remove(0);
    assert!(before.outcome.result.ok());
    let bundles_before = before.outcome.incr.bundles;
    assert!(bundles_before > 0, "{:?}", before.outcome.incr);

    // Add an import of the unrelated module (nothing else changes; the
    // unrefined module contributes no constraint bundles of its own).
    let app2 = format!("import {{bump}} from \"./extra.rsc\";\n{APP}");
    let after = ws.update("app.rsc", app2).remove(0);
    assert!(
        after.outcome.result.ok(),
        "{}",
        render(&after.outcome.result.diagnostics)
    );
    assert_eq!(after.merged.files.len(), 3);
    assert_eq!(
        after.outcome.incr.reused, bundles_before,
        "every pre-existing bundle must be reused: {:?}",
        after.outcome.incr
    );
    assert_eq!(
        after.outcome.incr.solved, 0,
        "untouched modules must re-solve nothing: {:?}",
        after.outcome.incr
    );
}

/// An import cycle is a real diagnostic naming the cycle, over serve.
#[test]
fn import_cycle_diagnostic_over_serve() {
    let ua = "file:///w/a.rsc";
    let ub = "file:///w/b.rsc";
    let a = "import {f} from \"./b.rsc\";\nexport function g(x: number): number { return f(x); }\n";
    let b = "import {g} from \"./a.rsc\";\nexport function f(x: number): number { return g(x); }\n";
    let mut serve = Serve::new(CheckerOptions::default());
    serve.handle(&did_open(ua, a));
    let (resp, _) = serve.handle(&did_open(ub, b));
    // b's check sees the cycle and publishes it as a diagnostic.
    let first = Json::parse(resp.lines().next().unwrap()).unwrap();
    assert_eq!(
        rsc_of(&first).get("verified"),
        Some(&Json::Bool(false)),
        "{resp}"
    );
    let diags = first
        .get("params")
        .and_then(|p| p.get("diagnostics"))
        .cloned();
    match diags {
        Some(Json::Arr(ds)) if !ds.is_empty() => {
            let msg = ds[0].get("message").and_then(Json::as_str).unwrap();
            assert!(msg.contains("import cycle"), "{msg}");
        }
        other => panic!("expected a cycle diagnostic, got {other:?}"),
    }
    // Breaking the cycle recovers both documents.
    let (resp, _) = serve.handle(&did_change(
        ub,
        "export function f(x: number): number { return x; }\n",
    ));
    for line in resp.lines() {
        let v = Json::parse(line).unwrap();
        assert_eq!(
            rsc_of(&v).get("verified"),
            Some(&Json::Bool(true)),
            "{line}"
        );
    }
}

/// A missing export is blamed at the importing name, with the module
/// named in the message.
#[test]
fn missing_export_diagnostic() {
    let mut ws = Workspace::new(CheckerOptions::default());
    ws.update("lib.rsc", LIB.to_string());
    let report = ws
        .update(
            "app.rsc",
            "import {helper} from \"./lib.rsc\";\nvar z = helper(1);\n".to_string(),
        )
        .remove(0);
    assert!(!report.outcome.result.ok());
    let msg = &report.outcome.result.diagnostics[0].message;
    assert!(msg.contains("does not export `helper`"), "{msg}");
    assert!(msg.contains("lib.rsc"), "{msg}");
}
