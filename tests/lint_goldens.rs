//! One fixture per dataflow lint code: each program trips exactly the
//! lint it names, with a non-dummy source range, and the full compact
//! rendering of the lint stream is pinned against a golden snapshot in
//! `tests/golden/lint-<code>.diag`.
//!
//! The suite also pins the lint layer's two contracts: lints are
//! warnings that never affect the verdict, and disabling the lint pass
//! (`lints: false`) changes no error-diagnostic byte.
//!
//! Regenerate the fixtures with `UPDATE_GOLDEN=1 cargo test -q
//! lint_fixtures` after an intentional lint-message change.

use rsc_core::{check_program, CheckerOptions, Severity};

/// (code, golden slug, program, expect_errors). Every lint code the
/// dataflow pass can emit is covered. `expect_errors` marks fixtures
/// the refinement checker also rejects (a provable constant
/// out-of-bounds read is both an R0008 error and an L0004 lint).
fn cases() -> Vec<(&'static str, &'static str, &'static str, bool)> {
    vec![
        (
            "L0001",
            "l0001",
            "function f(x: number): number {\n    var y = 3;\n    \
             if (y < 1) { return 0 - 1; }\n    return x;\n}\n",
            false,
        ),
        (
            "L0002",
            "l0002",
            "function g(x: number): number {\n    var y = 4;\n    \
             if (0 <= y) { return 1; }\n    return 0;\n}\n",
            false,
        ),
        (
            "L0003",
            "l0003",
            "function h(): number {\n    var n: {v: number | 0 <= v} = 5;\n    \
             return n;\n}\n",
            false,
        ),
        (
            "L0004",
            "l0004",
            "function k(): number {\n    var a = [1, 2, 3];\n    return a[5];\n}\n",
            true,
        ),
    ]
}

#[test]
fn lint_fixtures() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    for (code, slug, src, expect_errors) in cases() {
        let r = check_program(src, CheckerOptions::default());
        assert_eq!(
            !r.ok(),
            expect_errors,
            "{slug}: unexpected verdict (errors: {:?})",
            r.diagnostics
        );
        assert!(
            r.lints.iter().any(|l| l.code == Some(code)),
            "{slug}: no {code} lint — got:\n{}",
            r.lints
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        for l in &r.lints {
            assert_eq!(
                l.severity,
                Severity::Warning,
                "{slug}: lint is not a warning"
            );
            assert!(
                l.span.hi > l.span.lo && l.span.line > 0,
                "{slug}: lint has a dummy range: {l}"
            );
        }
        let mut rendered: String = r
            .lints
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        rendered.push('\n');
        let golden_path = golden_dir.join(format!("lint-{slug}.diag"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("write golden fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "{slug}: lints drifted from tests/golden/lint-{slug}.diag"
        );
    }
}

/// Disabling the lint pass empties `lints` and changes no error byte;
/// disabling the absint pre-pass keeps every lint (the lint layer does
/// not depend on the discharge tier).
#[test]
fn lints_are_severable_from_errors() {
    for (_, slug, src, _) in cases() {
        let on = check_program(src, CheckerOptions::default());
        let off = check_program(
            src,
            CheckerOptions {
                lints: false,
                ..CheckerOptions::default()
            },
        );
        assert!(off.lints.is_empty(), "{slug}: lints survived lints: false");
        let render = |r: &rsc_core::CheckResult| {
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            render(&on),
            render(&off),
            "{slug}: disabling lints changed the error stream"
        );
        let no_absint = check_program(
            src,
            CheckerOptions {
                absint: false,
                ..CheckerOptions::default()
            },
        );
        let lint_line = |r: &rsc_core::CheckResult| {
            r.lints
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            lint_line(&on),
            lint_line(&no_absint),
            "{slug}: --no-absint changed the lint stream"
        );
    }
}
