//! Parallel determinism: checking with `jobs = 1` and `jobs = 8` must
//! produce byte-identical diagnostics and verdicts on every benchmark of
//! the Figure 6 corpus — clean *and* with seeded bugs, so the comparison
//! exercises non-empty diagnostic output too.
//!
//! This holds by construction: bundles are solved independently, every
//! validity verdict is a pure function of the canonical VC fingerprint
//! (see `rsc_smt::cache`), and per-bundle failures are merged back in
//! source order. This suite is the regression net under that argument.

use rsc_bench::{benchmark_names, load_benchmark};
use rsc_core::{check_program, CheckResult, CheckerOptions};

fn with_jobs(jobs: usize) -> CheckerOptions {
    CheckerOptions {
        jobs,
        ..CheckerOptions::default()
    }
}

/// Renders a result exactly as consumers see it (severity, span, text).
fn render(r: &CheckResult) -> String {
    r.diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_identical(name: &str, src: &str) {
    let r1 = check_program(src, with_jobs(1));
    let r8 = check_program(src, with_jobs(8));
    assert_eq!(
        r1.ok(),
        r8.ok(),
        "{name}: verdict differs between jobs=1 and jobs=8"
    );
    assert_eq!(
        render(&r1),
        render(&r8),
        "{name}: diagnostics differ between jobs=1 and jobs=8"
    );
    // The partition itself is job-count independent, as are the solver
    // queries actually issued (hit/miss splits may differ, their sum and
    // every verdict may not).
    assert_eq!(r1.stats.constraints, r8.stats.constraints, "{name}");
    assert_eq!(r1.stats.kvars, r8.stats.kvars, "{name}");
    assert_eq!(r1.stats.bundles, r8.stats.bundles, "{name}");
    assert_eq!(r1.stats.smt_queries, r8.stats.smt_queries, "{name}");
}

#[test]
fn clean_corpus_is_deterministic_across_jobs() {
    for name in benchmark_names() {
        let src = load_benchmark(name).expect("benchmark file");
        assert_identical(name, &src);
    }
}

/// Per-bundle solver stats must partition the run's totals: every liquid
/// query is either a cache hit or a solved query in exactly one bundle's
/// report. This is the regression net for the stats-reset fix — with
/// cumulative (unreset) counters the sum overcounts immediately.
#[test]
fn bundle_reports_partition_query_totals() {
    let src = load_benchmark("splay").expect("benchmark file");
    let r = check_program(&src, with_jobs(2));
    assert!(r.ok());
    assert_eq!(r.stats.bundles, r.bundle_reports.len());
    let per_bundle: u64 = r
        .bundle_reports
        .iter()
        .map(|b| b.smt.queries + b.smt.cache_hits)
        .sum();
    assert_eq!(
        per_bundle, r.stats.smt_queries,
        "per-bundle counters must sum to the run total (reset between bundles)"
    );
    let constraints: usize = r.bundle_reports.iter().map(|b| b.constraints).sum();
    assert_eq!(constraints, r.stats.constraints);
    let kvars: usize = r.bundle_reports.iter().map(|b| b.kvars).sum();
    assert_eq!(
        kvars, r.stats.kvars,
        "every κ belongs to exactly one bundle"
    );
}

#[test]
fn seeded_bugs_are_deterministic_across_jobs() {
    // The same mutations `benchmarks_verify.rs` pins golden diagnostics
    // for: every one produces non-empty output, which is what makes this
    // comparison meaningful.
    for &(name, from, to) in rsc_bench::seeded_mutations() {
        let src = load_benchmark(name).expect("benchmark file");
        assert!(
            src.contains(from),
            "{name}: mutation site `{from}` not found"
        );
        let mutated = src.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_err() {
            continue;
        }
        assert_identical(name, &mutated);
    }
}
