//! Incremental soundness: a [`rsc_incr::CheckSession`] must be
//! observationally indistinguishable from cold whole-program checking.
//!
//! Two layers of evidence:
//!
//! 1. **Every seeded mutation** from the Fig. 6 corpus (the same table
//!    the rejection and golden-diagnostics suites pin) is edited *in*
//!    through a session — diagnostics must be byte-identical to a cold
//!    `check_program` of the mutated file — and then edited *back out* —
//!    the program must re-verify, with the re-check solving **strictly
//!    fewer** bundles than a cold run would (asserted via the per-bundle
//!    `cached` flags in `BundleReport`).
//!
//! 2. **Random edit scripts** (proptest): arbitrary sequences of
//!    mutation toggles applied to a corpus program, with the session
//!    compared against a cold check after every step. This catches
//!    retention bugs that only appear after a *sequence* of edits
//!    (stale verdicts resurrected from two edits ago, etc.).

use proptest::prelude::*;
use rsc_bench::{load_benchmark, seeded_mutations};
use rsc_core::{check_program, CheckResult, CheckerOptions};
use rsc_incr::CheckSession;

fn render(r: &CheckResult) -> String {
    r.diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn solved_bundles(r: &CheckResult) -> usize {
    r.bundle_reports.iter().filter(|b| !b.cached).count()
}

/// The acceptance-criteria loop: mutation in (byte-identical to cold),
/// mutation out (re-verifies, strictly fewer bundles solved than cold).
#[test]
fn seeded_mutations_in_and_out() {
    for &(name, from, to) in seeded_mutations() {
        let clean = load_benchmark(name).expect("benchmark file");
        let mutated = clean.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_err() {
            continue; // mutation breaks the syntax — nothing to compare
        }
        let mut session = CheckSession::new(CheckerOptions::default());

        // Cold-start the session on the clean program.
        let first = session.check(&clean);
        assert!(first.result.ok(), "{name}: clean corpus must verify");
        let total = first.result.bundle_reports.len();
        assert_eq!(
            solved_bundles(&first.result),
            total,
            "{name}: first check has nothing to reuse"
        );

        // Edit the bug in: byte-identical diagnostics vs a cold check.
        let broken = session.check(&mutated);
        let cold_broken = check_program(&mutated, CheckerOptions::default());
        assert!(!broken.result.ok(), "{name}: seeded bug must be rejected");
        assert_eq!(
            render(&broken.result),
            render(&cold_broken),
            "{name}: session diagnostics drifted from cold check"
        );

        // Edit it back out: verifies again, and the session solved
        // strictly fewer bundles than the cold run (which solves all).
        let fixed = session.check(&clean);
        assert!(fixed.result.ok(), "{name}: reverting the bug must verify");
        assert_eq!(render(&fixed.result), "");
        let resolved = solved_bundles(&fixed.result);
        let cold_total = fixed.result.bundle_reports.len();
        assert!(
            resolved < cold_total,
            "{name}: re-check solved {resolved}/{cold_total} bundles — \
             expected strictly fewer than a cold run"
        );
        assert_eq!(
            fixed.result.stats.bundles_reused,
            cold_total - resolved,
            "{name}: reuse accounting disagrees with the cached flags"
        );
    }
}

/// Session totals must stay meaningful under reuse: retained bundles
/// report their recorded counters (`cached: true`), and the per-bundle
/// query counts still sum to the run total exactly as they do cold.
#[test]
fn cached_reports_partition_totals() {
    // d3-arrays and its own seeded mutation: a genuine one-function
    // edit, so the run mixes cached and freshly solved reports.
    let (name, from, to) = seeded_mutations()
        .iter()
        .find(|(b, _, _)| *b == "d3-arrays")
        .copied()
        .expect("d3-arrays has a seeded mutation");
    let clean = load_benchmark(name).expect("benchmark file");
    let edited = clean.replacen(from, to, 1);
    assert_ne!(clean, edited, "mutation site must exist");
    assert!(rsc_syntax::parse_program(&edited).is_ok());

    let mut session = CheckSession::new(CheckerOptions::default());
    session.check(&clean);
    let outcome = session.check(&edited);
    let cached = outcome.result.bundle_reports.iter().filter(|b| b.cached);
    let solved = outcome.result.bundle_reports.iter().filter(|b| !b.cached);
    assert!(cached.count() > 0, "edit must retain some bundles");
    assert!(solved.count() > 0, "edit must re-solve some bundles");

    let per_bundle: u64 = outcome
        .result
        .bundle_reports
        .iter()
        .map(|b| b.smt_queries)
        .sum();
    assert_eq!(
        per_bundle, outcome.result.stats.smt_queries,
        "per-bundle smt_queries (cached + solved) must sum to the run total"
    );
    for b in &outcome.result.bundle_reports {
        assert_eq!(
            b.smt_queries,
            b.smt.queries + b.smt.cache_hits,
            "a bundle's liquid queries are either solved or cache hits"
        );
    }
}

/// The fingerprint-excludes-provenance invariant, end to end: an edit
/// that only inserts comments/blank lines shifts every span in the file
/// but changes no constraint *predicate*, so every bundle fingerprint is
/// unchanged and the session re-solves **zero** bundles — while the
/// reported diagnostics still move to the new line numbers (blame is
/// re-attached from the current run's constraints, not from retention).
#[test]
fn comment_only_edit_resolves_zero_bundles() {
    // A failing program, so we can watch the diagnostics' lines shift.
    let base = "type nat = {v: number | 0 <= v};\n\
                function dec(x: nat): nat {\n    return x - 1;\n}\n\
                function ok(x: nat): nat {\n    return x + 1;\n}\n";
    let mut session = CheckSession::new(CheckerOptions::default());
    let first = session.check(base);
    assert!(!first.result.ok(), "base program must be rejected");

    let shifted = format!("// a comment line\n\n{base}");
    let second = session.check(&shifted);
    assert_eq!(
        solved_bundles(&second.result),
        0,
        "a comment-only edit must re-solve zero bundles: {:?}",
        second.incr
    );
    assert_eq!(
        second.result.stats.bundles_reused,
        second.result.bundle_reports.len()
    );
    // Byte-identical to a cold check of the shifted source…
    let cold = check_program(&shifted, CheckerOptions::default());
    assert_eq!(render(&second.result), render(&cold));
    // …and the line numbers really moved (blame came from this run).
    assert_ne!(render(&first.result), render(&second.result));
    assert!(
        render(&second.result).contains("line 5"),
        "diagnostic should follow the two-line shift: {}",
        render(&second.result)
    );
}

/// The same invariant over a real corpus program: a blank-line insertion
/// at the top of navier-stokes re-solves nothing.
#[test]
fn corpus_blank_line_insertion_resolves_zero_bundles() {
    let clean = load_benchmark("navier-stokes").expect("benchmark file");
    let mut session = CheckSession::new(CheckerOptions::default());
    let first = session.check(&clean);
    assert!(first.result.ok());
    let total = first.result.bundle_reports.len();
    assert!(total > 1);

    let shifted = format!("\n{clean}");
    let second = session.check(&shifted);
    assert!(second.result.ok());
    assert_eq!(
        solved_bundles(&second.result),
        0,
        "blank-line insertion must re-solve zero of {total} bundles: {:?}",
        second.incr
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random mutation-toggle scripts over the d3-arrays benchmark:
    /// after every step the session must match a cold check byte for
    /// byte, and (after the first check) reuse at least one bundle
    /// whenever the program has more than one.
    #[test]
    fn edit_scripts_match_cold_checks(script in prop::collection::vec(0usize..2, 1..4)) {
        let name = "d3-arrays";
        let clean = load_benchmark(name).expect("benchmark file");
        let muts: Vec<(&str, &str)> = seeded_mutations()
            .iter()
            .filter(|(b, _, _)| *b == name)
            .map(|(_, f, t)| (*f, *t))
            .collect();
        prop_assert!(!muts.is_empty());

        let mut session = CheckSession::new(CheckerOptions::default());
        session.check(&clean);
        let mut applied = vec![false; muts.len()];
        for step in script {
            let slot = step % muts.len();
            applied[slot] = !applied[slot];
            let mut src = clean.clone();
            for (i, on) in applied.iter().enumerate() {
                if *on {
                    src = src.replacen(muts[i].0, muts[i].1, 1);
                }
            }
            if rsc_syntax::parse_program(&src).is_err() {
                applied[slot] = !applied[slot]; // skip unparseable snapshots
                continue;
            }
            let session_out = session.check(&src);
            let cold = check_program(&src, CheckerOptions::default());
            prop_assert_eq!(session_out.result.ok(), cold.ok());
            prop_assert_eq!(render(&session_out.result), render(&cold));
            let total = session_out.result.bundle_reports.len();
            if total > 1 {
                prop_assert!(
                    session_out.result.stats.bundles_reused > 0,
                    "one-mutation step should reuse something: {:?}",
                    session_out.incr
                );
            }
        }
    }
}
