//! End-to-end checks of every worked example in §2 of the paper: the
//! positive programs must verify; the paper's "BAD" variants must be
//! rejected.

use rsc_core::{check_program, CheckerOptions};

const PRELUDE: &str = r#"
type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type natN<n> = {v: nat | v = n};
type idx<a> = {v: nat | v < len(a)};
type NEArray<T> = {v: T[] | 0 < len(v)};
"#;

fn check(src: &str) -> rsc_core::CheckResult {
    check_program(&format!("{PRELUDE}{src}"), CheckerOptions::default())
}

fn assert_safe(src: &str) {
    let r = check(src);
    assert!(
        r.ok(),
        "expected the program to verify, got:\n{}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn assert_rejected(src: &str) {
    let r = check(src);
    assert!(
        !r.ok(),
        "expected a verification error but the program was accepted"
    );
}

// -------------------------------------------------------------- §2.1.1 ---

#[test]
fn head_requires_nonempty() {
    assert_safe(
        r#"
        function head(arr: NEArray<number>): number { return arr[0]; }
        function head0(a: number[]): number {
            if (0 < a.length) { return head(a); }
            return 0;
        }
    "#,
    );
}

#[test]
fn head_without_guard_rejected() {
    assert_rejected(
        r#"
        function head(arr: NEArray<number>): number { return arr[0]; }
        function bad(a: number[]): number {
            return head(a);
        }
    "#,
    );
}

#[test]
fn direct_out_of_bounds_rejected() {
    assert_rejected(
        r#"
        function bad(a: number[]): number { return a[0]; }
    "#,
    );
}

#[test]
fn guarded_access_verifies() {
    assert_safe(
        r#"
        function get3(a: number[]): number {
            if (3 < a.length) { return a[3]; }
            return 0;
        }
    "#,
    );
}

#[test]
fn reduce_min_index_verifies() {
    assert_safe(
        r#"
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
        function minIndex(a: number[]): number {
            if (a.length <= 0) { return -1; }
            function step(min, cur, i) {
                return cur < a[min] ? i : min;
            }
            return reduce(a, step, 0);
        }
    "#,
    );
}

#[test]
fn reduce_body_off_by_one_rejected() {
    // i <= a.length lets the callback see i = a.length: unsafe.
    assert_rejected(
        r#"
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i <= a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
    "#,
    );
}

// -------------------------------------------------------------- §2.1.2 ---

#[test]
fn value_based_overloading_verifies() {
    assert_safe(
        r#"
        function reduce<A, B>(a: A[], f: (acc: B, cur: A, i: idx<a>) => B, x: B): B {
            var res = x, i;
            for (i = 0; i < a.length; i++) {
                res = f(res, a[i], i);
            }
            return res;
        }
        sig $reduce : <A>(a: NEArray<A>, f: (A, A, idx<a>) => A) => A;
        sig $reduce : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
        function $reduce(a, f, x) {
            if (arguments.length === 3) { return reduce(a, f, x); }
            return reduce(a, f, a[0]);
        }
    "#,
    );
}

#[test]
fn overload_without_arity_test_rejected() {
    // Accessing a[0] without the arguments.length dispatch must fail for
    // the 3-argument (possibly-empty array) overload.
    assert_rejected(
        r#"
        sig $bad : <A>(a: NEArray<A>, f: (A, A, idx<a>) => A) => A;
        sig $bad : <A, B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
        function $bad(a, f, x) {
            return a[0];
        }
    "#,
    );
}

// -------------------------------------------------------------- §2.2.3 ---

// The grid arithmetic is nonlinear; like the paper's navier-stokes port
// (§5 "Ghost Functions") we factor the nonlinear facts into a trusted
// lemma instantiated at each access site.
const FIELD_CLASS: &str = r#"
type ArrayN<T, n> = {v: T[] | len(v) = n};
type grid<w, h> = ArrayN<number, (w + 2) * (h + 2)>;
type okW = {v: nat | v <= this.w};
type okH = {v: nat | v <= this.h};

declare gridIdxThm : (x: nat, y: nat, w: {v: number | x <= v}, h: {v: number | y <= v})
    => {v: boolean | 0 <= x + 1 + (y + 1) * (w + 2)
                  && x + 1 + (y + 1) * (w + 2) < (w + 2) * (h + 2)};

class Field {
    immutable w : pos;
    immutable h : pos;
    dens : grid<this.w, this.h>;

    constructor(w: pos, h: pos, d: grid<w, h>) {
        this.h = h; this.w = w; this.dens = d;
    }

    setDensity(x: okW, y: okH, d: number) {
        var t = gridIdxThm(x, y, this.w, this.h);
        var rowS = this.w + 2;
        var i = x + 1 + (y + 1) * rowS;
        this.dens[i] = d;
    }

    @ReadOnly getDensity(x: okW, y: okH): number {
        var t = gridIdxThm(x, y, this.w, this.h);
        var rowS = this.w + 2;
        var i = x + 1 + (y + 1) * rowS;
        return this.dens[i];
    }

    reset(d: grid<this.w, this.h>) {
        this.dens = d;
    }
}
"#;

#[test]
fn field_class_ok_construction() {
    assert_safe(&format!(
        "{FIELD_CLASS}
        var z = new Field(3, 7, new Array(45));
        z.setDensity(2, 5, 0 - 5);
        var d = z.getDensity(2, 5);
        z.reset(new Array(45));
        "
    ));
}

#[test]
fn field_class_bad_grid_size_rejected() {
    assert_rejected(&format!(
        "{FIELD_CLASS}
        var q = new Field(3, 7, new Array(44));
        "
    ));
}

#[test]
fn field_class_bad_coordinate_rejected() {
    assert_rejected(&format!(
        "{FIELD_CLASS}
        var z = new Field(3, 7, new Array(45));
        var d = z.getDensity(5, 2);
        "
    ));
}

#[test]
fn field_class_bad_reset_rejected() {
    assert_rejected(&format!(
        "{FIELD_CLASS}
        var z = new Field(3, 7, new Array(45));
        z.reset(new Array(5));
        "
    ));
}

// ---------------------------------------------------------------- §4.2 ---

#[test]
fn typeof_reflection_verifies() {
    assert_safe(
        r#"
        function incr(x: number + undefined): number {
            var r = 1;
            if (typeof x === "number") { r = r + x; }
            return r;
        }
    "#,
    );
}

#[test]
fn arithmetic_on_possibly_undefined_rejected() {
    // var x = undefined; var y = x + 1; — rejected by rsc (§4.1).
    assert_rejected(
        r#"
        function bad(x: number + undefined): number {
            return x + 1;
        }
    "#,
    );
}

// ---------------------------------------------------------------- §4.3 ---

const HIERARCHY: &str = r#"
enum TypeFlags {
    Any = 0x00000001,
    String = 0x00000002,
    Class = 0x00000400,
    Interface = 0x00000800,
    Reference = 0x00001000,
    Object = 0x00001C00,
}
type flagsTy = {v: TypeFlags |
       (mask(v, 0x00000001) => impl(this, AnyType))
    && (mask(v, 0x00001C00) => impl(this, ObjectType)) };

interface Type {
    immutable flags : flagsTy;
    id : number;
}
interface AnyType extends Type { }
interface ObjectType extends Type {
    otMembers : number;
}
interface InterfaceType extends ObjectType { }
"#;

#[test]
fn guarded_downcast_verifies() {
    assert_safe(&format!(
        "{HIERARCHY}
        function getProps(t: Type): number {{
            if (t.flags & TypeFlags.Object) {{
                var o = <ObjectType> t;
                return o.otMembers;
            }}
            return 0;
        }}
        "
    ));
}

#[test]
fn unguarded_downcast_rejected() {
    assert_rejected(&format!(
        "{HIERARCHY}
        function bad(t: Type): number {{
            var o = <ObjectType> t;
            return o.otMembers;
        }}
        "
    ));
}

#[test]
fn wrong_mask_downcast_rejected() {
    assert_rejected(&format!(
        "{HIERARCHY}
        function bad(t: Type): number {{
            if (t.flags & TypeFlags.String) {{
                var o = <ObjectType> t;
                return o.otMembers;
            }}
            return 0;
        }}
        "
    ));
}

#[test]
fn subset_mask_downcast_verifies() {
    // Class ⊆ Object: testing the Class bit alone implies the Object mask.
    assert_safe(&format!(
        "{HIERARCHY}
        function getProps(t: Type): number {{
            if (t.flags & TypeFlags.Class) {{
                var o = <ObjectType> t;
                return o.otMembers;
            }}
            return 0;
        }}
        "
    ));
}

// ------------------------------------------------------------ mutation ---

#[test]
fn immutable_field_write_rejected() {
    assert_rejected(&format!(
        "{FIELD_CLASS}
        var z = new Field(3, 7, new Array(45));
        z.w = 10;
        "
    ));
}

#[test]
fn ghost_function_axiom() {
    // The navier-stokes idiom: a trusted nonlinear lemma instantiated at
    // the call site (§5 "Ghost Functions").
    assert_safe(
        r#"
        declare mulThm1 : (a: nat, b: {v: number | 2 <= v}) => {v: boolean | a + a <= a * b};
        function double_bound(x: nat, y: {v: number | 2 <= v}): {v: number | v <= x * y} {
            var t = mulThm1(x, y);
            return x + x;
        }
    "#,
    );
}
