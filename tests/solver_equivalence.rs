//! Solver-configuration equivalence: the incremental-SMT fixpoint and
//! the persistent `--vc-cache` disk tier are performance features only —
//! every benchmark of the Figure 6 corpus (clean *and* with seeded bugs)
//! must produce byte-identical diagnostics, verdicts, and query counts
//! with incremental contexts on or off, and with a disk cache cold or
//! warm, at any worker count.
//!
//! Why this holds: an `IncrContext` answers exactly the conjunction the
//! fresh solver would encode (activation literals select the same
//! hypotheses; retained blocking clauses are implied by the clause
//! database), the VC disk tier stores only Unsat verdicts under a
//! versioned key, and bundle-verdict reuse replays a pure function of
//! the canonical bundle fingerprint. This suite is the regression net
//! under those arguments.

use rsc_bench::{benchmark_names, load_benchmark};
use rsc_core::{check_program, CheckResult, CheckerOptions};
use rsc_incr::CheckSession;

fn options(incremental: bool, jobs: usize) -> CheckerOptions {
    CheckerOptions {
        incremental_smt: incremental,
        jobs,
        ..CheckerOptions::default()
    }
}

/// Renders a result exactly as consumers see it (severity, span, text).
fn render(r: &CheckResult) -> String {
    r.diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_equivalent(name: &str, a_label: &str, a: &CheckResult, b_label: &str, b: &CheckResult) {
    assert_eq!(
        a.ok(),
        b.ok(),
        "{name}: verdict differs between {a_label} and {b_label}"
    );
    assert_eq!(
        render(a),
        render(b),
        "{name}: diagnostics differ between {a_label} and {b_label}"
    );
    assert_eq!(
        a.stats.smt_queries, b.stats.smt_queries,
        "{name}: liquid query count differs between {a_label} and {b_label}"
    );
    assert_eq!(a.stats.constraints, b.stats.constraints, "{name}");
    assert_eq!(a.stats.bundles, b.stats.bundles, "{name}");
}

/// Every (clean, seeded-bug) corpus source, parseable mutants only.
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for name in benchmark_names() {
        let src = load_benchmark(name).expect("benchmark file");
        out.push((name.to_string(), src));
    }
    for &(name, from, to) in rsc_bench::seeded_mutations() {
        let src = load_benchmark(name).expect("benchmark file");
        let mutated = src.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_ok() {
            out.push((format!("{name}+bug"), mutated));
        }
    }
    out
}

#[test]
fn incremental_matches_fresh_on_corpus() {
    for (name, src) in corpus() {
        let incr = check_program(&src, options(true, 1));
        let fresh = check_program(&src, options(false, 1));
        assert_equivalent(&name, "incremental", &incr, "fresh", &fresh);
        // And across worker counts with incremental contexts on (each
        // bundle owns its contexts, so parallelism cannot interleave).
        let incr4 = check_program(&src, options(true, 4));
        assert_equivalent(&name, "jobs=1", &incr, "jobs=4", &incr4);
    }
}

#[test]
fn disk_cache_warm_matches_cold_on_corpus() {
    let dir = std::env::temp_dir().join(format!("rsc-vcc-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (name, src) in corpus() {
        let cold = check_program(&src, CheckerOptions::default());

        // First session populates the disk tier; a second, fresh session
        // (simulating a process restart) must serve every bundle from
        // disk and still match the cold run byte for byte.
        let populate = CheckSession::with_disk(CheckerOptions::default(), &dir).check(&src);
        assert_equivalent(&name, "cold", &cold, "disk-cold", &populate.result);

        let warm = CheckSession::with_disk(CheckerOptions::default(), &dir).check(&src);
        assert_equivalent(&name, "cold", &cold, "disk-warm", &warm.result);
        assert_eq!(
            warm.incr.reused, warm.incr.bundles,
            "{name}: a warm disk cache must reuse every bundle"
        );
        assert_eq!(
            warm.incr.solved, 0,
            "{name}: a warm re-check must solve zero bundles"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
