// expect-lint: L0002
function g(x: number): number {
    var y = 4;
    if (0 <= y) { return 1; }
    return 0;
}
