// Shrunk minimal fuzz failure: method call through a possibly-null receiver.
// expect: R0004
class MN { x : number; constructor(x: number) { this.x = x; }
    @ReadOnly get(): number { return this.x; } }
function mn(p: MN + null): number {
    return p.get();
}
