// expect: R0008
// expect-lint: L0004
function k(): number {
    var a = [1, 2, 3];
    return a[5];
}
