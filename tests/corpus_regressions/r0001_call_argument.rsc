// Shrunk minimal fuzz failure: negative literal into a `nat` parameter.
// expect: R0001
type nat = {v: number | 0 <= v};
function mh(x: nat): nat { return x; }
function mc(): nat { return mh(0 - 1); }
