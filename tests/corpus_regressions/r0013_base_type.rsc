// Shrunk minimal fuzz failure: number + string.
// expect: R0013
function mt(str: string): number {
    return 1 + str;
}
