// Shrunk minimal fuzz failure: read at index `a.length`.
// expect: R0008
function mb(a: number[]): number {
    return a[a.length];
}
