// Shrunk minimal fuzz failure: field read through a possibly-null receiver.
// expect: R0006
class MQ { x : number; constructor(x: number) { this.x = x; } }
function mq(p: MQ + null): number {
    return p.x;
}
