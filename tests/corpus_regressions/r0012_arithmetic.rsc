// Shrunk minimal fuzz failure: division by a possibly-zero denominator.
// expect: R0012
function mz(x: number, y: number): number {
    return x / y;
}
