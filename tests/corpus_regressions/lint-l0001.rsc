// expect-lint: L0001
function f(x: number): number {
    var y = 3;
    if (y < 1) { return 0 - 1; }
    return x;
}
