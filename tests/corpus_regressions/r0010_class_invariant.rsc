// Shrunk minimal fuzz failure: unrefined number in an immutable `nat` field
// at constructor exit.
// expect: R0010
type nat = {v: number | 0 <= v};
class MI {
    immutable n : nat;
    constructor(v: number) { this.n = v; }
}
