// Shrunk minimal fuzz failure: string assigned to a numeric loop variable.
// expect: R0005
function ml(): number {
    var i = 0;
    while (i < 3) { i = "s"; }
    return i;
}
