// Shrunk minimal fuzz failure: `x - 1` returned where `nat` is declared.
// expect: R0002
type nat = {v: number | 0 <= v};
function mr(x: nat): nat {
    return x - 1;
}
