// Shrunk minimal fuzz failure: negative initializer for an annotated `nat` local.
// expect: R0003
type nat = {v: number | 0 <= v};
function ma(): void {
    var y: nat = 0 - 5;
}
