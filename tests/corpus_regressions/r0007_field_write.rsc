// Shrunk minimal fuzz failure: plain number written into a `nat` field.
// expect: R0007
type nat = {v: number | 0 <= v};
class MW {
    n : nat;
    constructor(n: nat) { this.n = n; }
    @Mutable poke(x: number) { this.n = x; }
}
