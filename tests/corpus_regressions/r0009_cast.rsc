// Shrunk minimal fuzz failure: downcast the checker cannot prove.
// expect: R0009
class MA { x : number; constructor(x: number) { this.x = x; } }
class MB extends MA { y : number; constructor(x: number, y: number) {
    this.x = x; this.y = y; } }
function md(a: MA): number {
    var b = <MB> a;
    return b.y;
}
