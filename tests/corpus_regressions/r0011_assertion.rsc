// Shrunk minimal fuzz failure: assert over an unconstrained parameter.
// expect: R0011
function ms(x: number): void {
    assert(0 < x);
}
