// expect-lint: L0003
function h(): number {
    var n: {v: number | 0 <= v} = 5;
    return n;
}
