//! §5 safety properties: every benchmark in the corpus verifies
//! (property accesses, array bounds, overloads, downcasts), and seeded
//! errors are rejected.

use rsc_bench::load_benchmark;
use rsc_core::{check_program, CheckerOptions};

fn check_benchmark(name: &str) {
    let src = load_benchmark(name).expect("benchmark file");
    let r = check_program(&src, CheckerOptions::default());
    assert!(
        r.ok(),
        "benchmark {name} should verify, got:\n{}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn navier_stokes_verifies() {
    check_benchmark("navier-stokes");
}

#[test]
fn splay_verifies() {
    check_benchmark("splay");
}

#[test]
fn richards_verifies() {
    check_benchmark("richards");
}

#[test]
fn raytrace_verifies() {
    check_benchmark("raytrace");
}

#[test]
fn transducers_verifies() {
    check_benchmark("transducers");
}

#[test]
fn d3_arrays_verifies() {
    check_benchmark("d3-arrays");
}

#[test]
fn tsc_checker_verifies() {
    check_benchmark("tsc-checker");
}

/// Seeded-bug rejection: flipping a guard or widening an index in each
/// benchmark must produce a verification error.
#[test]
fn seeded_bugs_rejected() {
    let mutations = [
        ("navier-stokes", "i + 1 < row.length", "i + 1 <= row.length"),
        ("raytrace", "out[2] = a[2] + b[2];", "out[3] = a[2] + b[2];"),
        (
            "tsc-checker",
            "t.flags & TypeFlags.Object",
            "t.flags & TypeFlags.String",
        ),
        ("richards", "handlers[id]", "handlers[id + 1]"),
        ("d3-arrays", "var best = a[0];", "var best = a[1];"),
    ];
    for (name, from, to) in mutations {
        let src = load_benchmark(name).expect("benchmark file");
        assert!(
            src.contains(from),
            "{name}: mutation site `{from}` not found"
        );
        let mutated = src.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_err() {
            continue; // mutation broke the syntax: fine, still "rejected"
        }
        let r = check_program(&mutated, CheckerOptions::default());
        assert!(
            !r.ok(),
            "benchmark {name} with seeded bug `{from}` → `{to}` should be rejected"
        );
    }
}
