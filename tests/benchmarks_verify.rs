//! §5 safety properties: every benchmark in the corpus verifies
//! (property accesses, array bounds, overloads, downcasts), and seeded
//! errors are rejected.

use rsc_bench::load_benchmark;
use rsc_core::{check_program, CheckerOptions};

fn check_benchmark(name: &str) {
    let src = load_benchmark(name).expect("benchmark file");
    let r = check_program(&src, CheckerOptions::default());
    assert!(
        r.ok(),
        "benchmark {name} should verify, got:\n{}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn navier_stokes_verifies() {
    check_benchmark("navier-stokes");
}

#[test]
fn splay_verifies() {
    check_benchmark("splay");
}

#[test]
fn richards_verifies() {
    check_benchmark("richards");
}

#[test]
fn raytrace_verifies() {
    check_benchmark("raytrace");
}

#[test]
fn transducers_verifies() {
    check_benchmark("transducers");
}

#[test]
fn d3_arrays_verifies() {
    check_benchmark("d3-arrays");
}

#[test]
fn tsc_checker_verifies() {
    check_benchmark("tsc-checker");
}

/// Seeded-bug rejection: flipping a guard or widening an index in each
/// benchmark must produce a verification error — and the *messages* are
/// pinned against golden snapshots in `tests/golden/`, so a refactor of
/// the solve pipeline cannot silently change what users are told, only
/// that "something" failed.
///
/// Regenerate the fixtures with `UPDATE_GOLDEN=1 cargo test -q
/// seeded_bugs_rejected` after an intentional diagnostics change.
#[test]
fn seeded_bugs_rejected() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    for &(name, from, to) in rsc_bench::seeded_mutations() {
        let src = load_benchmark(name).expect("benchmark file");
        assert!(
            src.contains(from),
            "{name}: mutation site `{from}` not found"
        );
        let mutated = src.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_err() {
            continue; // mutation broke the syntax: fine, still "rejected"
        }
        let r = check_program(&mutated, CheckerOptions::default());
        assert!(
            !r.ok(),
            "benchmark {name} with seeded bug `{from}` → `{to}` should be rejected"
        );
        // Every corpus rejection must carry full provenance: an
        // obligation-kind code and a real (non-dummy) byte range.
        for d in &r.diagnostics {
            assert!(
                d.code.is_some(),
                "{name}: rejection diagnostic without an obligation code: {d}"
            );
            assert!(
                d.span.hi > d.span.lo && d.span.line > 0,
                "{name}: rejection diagnostic with a dummy range: {d}"
            );
        }
        let mut rendered: String = r
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        rendered.push('\n');
        let golden_path = golden_dir.join(format!("seeded-{name}.diag"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("write golden fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "benchmark {name} with seeded bug `{from}` → `{to}`: rejection \
             messages drifted from tests/golden/seeded-{name}.diag"
        );
    }
}
