//! Observability must be free when off and invisible when on.
//!
//! Three contracts from `ARCHITECTURE.md`'s Observability section:
//!
//! 1. **Collection never perturbs verdicts**: diagnostics are
//!    byte-identical with the span collector enabled and disabled, at
//!    any worker count (in-process and through the real `--profile`
//!    flag).
//! 2. **Disabled spans are near-free**: a disabled `span!` is one
//!    relaxed atomic load — the projected cost of every span site in a
//!    corpus check stays under 2% of the check itself.
//! 3. **`--stats-json` is deterministic** in everything that is not a
//!    measurement: the golden fixture (`tests/golden/stats-splay.json`,
//!    regenerate with `UPDATE_GOLDEN=1`) pins the full shape with
//!    timing and cache fields normalized to 0.
//!
//! The span collector is process-global, so the in-process tests here
//! serialize on one mutex (subprocess tests don't need it).

use std::sync::Mutex;

use rsc_bench::{load_benchmark, seeded_mutations};
use rsc_core::{check_program, CheckResult, CheckerOptions};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs(jobs: usize) -> CheckerOptions {
    CheckerOptions {
        jobs,
        ..CheckerOptions::default()
    }
}

fn render(r: &CheckResult) -> String {
    r.diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Contract 1, in-process: enabling collection changes no verdict, no
/// diagnostic byte, and no structural statistic, at jobs=1 and jobs=4 —
/// on a clean benchmark and on every seeded mutant (non-empty output).
#[test]
fn profiling_does_not_perturb_diagnostics() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Two clean programs plus their seeded mutants (non-empty
    // diagnostics); the clean whole-corpus jobs sweep already lives in
    // `parallel_determinism.rs`, so this pins the profiling axis only.
    let mut programs: Vec<(String, String)> = vec![(
        "splay-clean".to_string(),
        load_benchmark("splay").expect("benchmark file"),
    )];
    for &(name, from, to) in seeded_mutations() {
        if name != "splay" && name != "navier-stokes" {
            continue;
        }
        let src = load_benchmark(name).expect("benchmark file");
        let mutated = src.replacen(from, to, 1);
        if rsc_syntax::parse_program(&mutated).is_ok() {
            programs.push((format!("{name}-mutant"), mutated));
        }
    }
    for (name, src) in &programs {
        for jobs in [1, 4] {
            rsc_obs::set_enabled(false);
            rsc_obs::drain();
            let off = check_program(src, with_jobs(jobs));

            rsc_obs::set_enabled(true);
            let on = check_program(src, with_jobs(jobs));
            rsc_obs::set_enabled(false);
            let profile = rsc_obs::drain();

            assert_eq!(
                render(&off),
                render(&on),
                "{name}: diagnostics differ with profiling on (jobs={jobs})"
            );
            assert_eq!(off.ok(), on.ok(), "{name}: verdict differs (jobs={jobs})");
            assert_eq!(off.stats.constraints, on.stats.constraints, "{name}");
            assert_eq!(off.stats.smt_queries, on.stats.smt_queries, "{name}");
            assert!(
                !profile.spans.is_empty(),
                "{name}: enabled run recorded no spans (jobs={jobs})"
            );
        }
    }
}

/// Contract 2: project the disabled-mode overhead. Measure the per-call
/// cost of a disabled span directly, count the spans an enabled check
/// actually records, and require `span_sites x per_call` under 2% of
/// the measured check time. (The margin in practice is ~1000x; the 2%
/// bound is the documented ceiling, not the expectation.)
#[test]
fn disabled_span_overhead_under_two_percent() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rsc_obs::set_enabled(false);
    rsc_obs::drain();

    // Per-call cost of the disabled fast path.
    const CALLS: u32 = 1_000_000;
    let t = std::time::Instant::now();
    for i in 0..CALLS {
        let _sp = rsc_obs::span!("overhead-probe", unit = i);
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / f64::from(CALLS);

    // Span count and wall time of a real corpus check.
    let src = load_benchmark("splay").expect("benchmark file");
    let t = std::time::Instant::now();
    rsc_obs::set_enabled(true);
    let r = check_program(&src, with_jobs(1));
    rsc_obs::set_enabled(false);
    let check_ns = t.elapsed().as_nanos() as f64;
    let spans = rsc_obs::drain().spans.len() as f64;
    assert!(r.ok());

    let projected = spans * per_call_ns;
    assert!(
        projected < 0.02 * check_ns,
        "disabled span overhead projects to {projected:.0}ns over {spans} sites, \
         above 2% of the {check_ns:.0}ns check"
    );
}

/// Replaces the integer value after each run-dependent key
/// (measurements and scheduling-dependent cache splits) with 0, leaving
/// the deterministic structure intact.
fn normalize_stats_json(s: &str) -> String {
    const VOLATILE: [&str; 7] = [
        "\"solve_us\":",
        "\"total_us\":",
        "\"time_us\":",
        // Which bundle scores a hit in the shared VC cache depends on
        // solve scheduling; the per-bundle split is a measurement even
        // though the run totals are not.
        "\"cache_hits\":",
        "\"hits\":",
        "\"misses\":",
        "\"evictions\":",
    ];
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    'outer: while !rest.is_empty() {
        for key in VOLATILE {
            if let Some(tail) = rest.strip_prefix(key) {
                out.push_str(key);
                out.push('0');
                rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
                continue 'outer;
            }
        }
        let mut chars = rest.chars();
        out.push(chars.next().unwrap());
        rest = chars.as_str();
    }
    out
}

fn run_rsc(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_rsc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run rsc binary")
}

/// Contract 3: the `--stats-json` shape is pinned against a golden
/// fixture, identical at jobs=1 and jobs=4 once measurements are
/// normalized. Regenerate with `UPDATE_GOLDEN=1 cargo test -q
/// stats_json_matches_golden`.
#[test]
fn stats_json_matches_golden() {
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("stats-splay.json");
    let mut normalized: Vec<String> = Vec::new();
    for jobs in ["1", "4"] {
        let out = run_rsc(&["--stats-json", "--jobs", jobs, "benchmarks/splay.rsc"]);
        assert!(out.status.success(), "rsc --stats-json failed: {out:?}");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stats json");
        normalized.push(normalize_stats_json(&stdout));
    }
    assert_eq!(
        normalized[0], normalized[1],
        "normalized --stats-json differs between jobs=1 and jobs=4"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &normalized[0]).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            golden_path.display()
        )
    });
    assert_eq!(
        normalized[0], expected,
        "--stats-json shape drifted from tests/golden/stats-splay.json \
         (regenerate with UPDATE_GOLDEN=1 if intentional)"
    );
}

/// Contract 1, end-to-end: the real `--profile` flag leaves rendered
/// diagnostics byte-identical at jobs=1 and jobs=4, and the trace file
/// it writes covers the whole phase taxonomy.
#[test]
fn profile_flag_preserves_diagnostics_and_covers_taxonomy() {
    // A seeded splay mutant gives non-empty diagnostics to compare.
    let (name, from, to) = *seeded_mutations()
        .iter()
        .find(|(n, _, _)| *n == "splay")
        .expect("splay has a seeded mutation");
    let mutated = load_benchmark(name)
        .expect("benchmark file")
        .replacen(from, to, 1);
    let dir = std::env::temp_dir().join(format!("rsc-profile-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let src_path = dir.join("splay-mutant.rsc");
    std::fs::write(&src_path, &mutated).expect("write mutant");
    let src_arg = src_path.to_str().expect("utf-8 temp path");
    let trace_path = dir.join("trace.json");
    let trace_arg = trace_path.to_str().expect("utf-8 temp path");

    // Diagnostics = stdout minus the header line (which carries wall
    // time). The UNSAFE header is the only line mentioning the file
    // with a timing suffix.
    let diags = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains(": UNSAFE ("))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut rendered: Vec<String> = Vec::new();
    for jobs in ["1", "4"] {
        let plain = run_rsc(&["--jobs", jobs, src_arg]);
        assert_eq!(plain.status.code(), Some(1), "mutant must be rejected");
        let profiled = run_rsc(&["--jobs", jobs, "--profile", trace_arg, src_arg]);
        assert_eq!(profiled.status.code(), Some(1), "mutant must be rejected");
        assert_eq!(
            diags(&plain),
            diags(&profiled),
            "--profile changed rendered diagnostics at jobs={jobs}"
        );
        rendered.push(diags(&plain));
    }
    assert_eq!(
        rendered[0], rendered[1],
        "rendered diagnostics differ between jobs=1 and jobs=4"
    );

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    for phase in [
        "\"parse\"",
        "\"ssa\"",
        "\"class-table\"",
        "\"constraint-gen\"",
        "\"partition\"",
        "\"solve\"",
        "\"solve-bundle\"",
        "\"fixpoint-iter\"",
        "\"smt-query\"",
        "\"check\"",
    ] {
        assert!(
            trace.contains(phase),
            "trace is missing taxonomy phase {phase}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
