//! One failing fixture per obligation kind: each program is rejected
//! with at least one diagnostic carrying that kind's `R….`-style code
//! and a non-dummy source range, and the full rendered output is pinned
//! against a golden snapshot in `tests/golden/blame-<kind>.diag`.
//!
//! Regenerate the fixtures with `UPDATE_GOLDEN=1 cargo test -q
//! blame_kind` after an intentional diagnostics change.

use rsc_core::{check_program, CheckerOptions, ObligationKind};

const NAT: &str = "type nat = {v: number | 0 <= v};\n";

/// (kind, golden slug, program). Every [`ObligationKind`] that a user
/// program can trip is covered; `Other` is only reachable from
/// hand-built constraint sets (tests, tools).
fn cases() -> Vec<(ObligationKind, &'static str, String)> {
    vec![
        (
            ObligationKind::CallArgument,
            "call-argument",
            format!(
                "{NAT}function half(x: nat): nat {{ return x; }}\n\
                 function main(): nat {{ return half(0 - 1); }}\n"
            ),
        ),
        (
            ObligationKind::Return,
            "return",
            format!("{NAT}function dec(x: nat): nat {{\n    return x - 1;\n}}\n"),
        ),
        (
            ObligationKind::Assignment,
            "assignment",
            format!("{NAT}function main(): void {{\n    var y: nat = 0 - 5;\n}}\n"),
        ),
        (
            ObligationKind::Narrowing,
            "narrowing",
            "class P { x : number; constructor(x: number) { this.x = x; }\n    \
             @ReadOnly get(): number { return this.x; } }\n\
             function f(p: P + null): number {\n    return p.get();\n}\n"
                .to_string(),
        ),
        (
            ObligationKind::LoopInvariant,
            "loop-invariant",
            "function f(): number {\n    var i = 0;\n    while (i < 3) { i = \"s\"; }\n    \
             return i;\n}\n"
                .to_string(),
        ),
        (
            ObligationKind::FieldRead,
            "field-read",
            "class P { x : number; constructor(x: number) { this.x = x; } }\n\
             function f(p: P + null): number {\n    return p.x;\n}\n"
                .to_string(),
        ),
        (
            ObligationKind::FieldWrite,
            "field-write",
            format!(
                "{NAT}class C {{\n    n : nat;\n    constructor(n: nat) {{ this.n = n; }}\n    \
                 @Mutable poke(x: number) {{ this.n = x; }}\n}}\n"
            ),
        ),
        (
            ObligationKind::ArrayBounds,
            "array-bounds",
            "function last(a: number[]): number {\n    return a[a.length];\n}\n".to_string(),
        ),
        (
            ObligationKind::Cast,
            "cast",
            "class A { x : number; constructor(x: number) { this.x = x; } }\n\
             class B extends A { y : number; constructor(x: number, y: number) {\n    \
             this.x = x; this.y = y; } }\n\
             function f(a: A): number {\n    var b = <B> a;\n    return b.y;\n}\n"
                .to_string(),
        ),
        (
            ObligationKind::ClassInvariant,
            "class-invariant",
            format!(
                "{NAT}class P {{\n    immutable n : nat;\n    \
                 constructor(v: number) {{ this.n = v; }}\n}}\n"
            ),
        ),
        (
            ObligationKind::Assertion,
            "assertion",
            "function f(x: number): void {\n    assert(0 < x);\n}\n".to_string(),
        ),
        (
            ObligationKind::Arithmetic,
            "arithmetic",
            "function f(x: number, y: number): number {\n    return x / y;\n}\n".to_string(),
        ),
        (
            ObligationKind::BaseType,
            "base-type",
            "function f(s: string): number {\n    return 1 + s;\n}\n".to_string(),
        ),
    ]
}

#[test]
fn every_reachable_kind_has_a_fixture() {
    let covered: Vec<ObligationKind> = cases().iter().map(|(k, _, _)| *k).collect();
    for kind in ObligationKind::all() {
        if *kind == ObligationKind::Other {
            continue; // synthetic-only (hand-built constraint sets)
        }
        assert!(
            covered.contains(kind),
            "obligation kind {kind:?} ({}) has no failing fixture",
            kind.code()
        );
    }
}

#[test]
fn blame_kind_fixtures() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    for (kind, slug, src) in cases() {
        let r = check_program(&src, CheckerOptions::default());
        assert!(!r.ok(), "{slug}: fixture must be rejected");
        assert!(
            r.diagnostics.iter().any(|d| d.code == Some(kind.code())),
            "{slug}: no diagnostic carries code {} — got:\n{}",
            kind.code(),
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        for d in &r.diagnostics {
            assert!(
                d.span.hi > d.span.lo && d.span.line > 0,
                "{slug}: diagnostic has a dummy range: {d}"
            );
            assert!(d.code.is_some(), "{slug}: diagnostic has no code: {d}");
        }
        let mut rendered: String = r
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        rendered.push('\n');
        let golden_path = golden_dir.join(format!("blame-{slug}.diag"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("write golden fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "{slug}: diagnostics drifted from tests/golden/blame-{slug}.diag"
        );
    }
}
