//! Regression corpus distilled from the fuzzer: each `.rsc` file under
//! `tests/corpus_regressions/` is a shrunk minimal rejection — a fuzz
//! mutant with the generated base program shrunk away until only the
//! broken obligation (plus the aliases it mentions) remains. The
//! expected error code is pinned in a `// expect: R00xx` header line,
//! so the files are standalone: `rsc <file>` reproduces the rejection
//! without any test harness.
//!
//! The suite guards the same invariant as `rsc fuzz`'s mutation
//! oracle — every obligation kind `R0001`–`R0013` stays *reachable*
//! and keeps its code — but deterministically and in milliseconds,
//! so a drift shows up in `cargo test` before anyone re-runs the
//! fuzzer.
//!
//! Files may additionally (or instead) pin dataflow lints with
//! `// expect-lint: L000x` headers: every named lint code must appear
//! in the check's warning stream. A file with only `expect-lint`
//! headers is a lint regression — it may verify cleanly.

use std::collections::BTreeSet;

use rsc_core::{check_program, CheckerOptions};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions")
}

/// Every corpus file is rejected with the code its `// expect:` header
/// pins, and carries every lint its `// expect-lint:` headers pin.
#[test]
fn every_corpus_regression_is_rejected_with_its_expected_code() {
    let mut codes_seen = BTreeSet::new();
    let mut lint_codes_seen = BTreeSet::new();
    let mut files = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rsc") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let expected: Option<String> = src
            .lines()
            .find_map(|l| l.trim().strip_prefix("// expect:"))
            .map(|c| c.trim().to_string());
        let expected_lints: Vec<String> = src
            .lines()
            .filter_map(|l| l.trim().strip_prefix("// expect-lint:"))
            .map(|c| c.trim().to_string())
            .collect();
        assert!(
            expected.is_some() || !expected_lints.is_empty(),
            "{}: missing `// expect: R00xx` or `// expect-lint: L000x` header",
            path.display()
        );

        let result = check_program(&src, CheckerOptions::default());
        if let Some(expected) = &expected {
            assert!(
                !result.ok(),
                "{}: verified, but must be rejected with {expected}",
                path.display()
            );
            let rendered: Vec<String> = result.diagnostics.iter().map(|d| d.to_string()).collect();
            assert!(
                rendered.iter().any(|d| d.contains(expected)),
                "{}: no {expected} diagnostic among:\n{}",
                path.display(),
                rendered.join("\n")
            );
            codes_seen.insert(expected.clone());
        } else {
            assert!(
                result.ok(),
                "{}: lint-only regression was rejected:\n{}",
                path.display(),
                result
                    .diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        for code in &expected_lints {
            assert!(
                result.lints.iter().any(|l| l.code == Some(code.as_str())),
                "{}: no {code} lint among:\n{}",
                path.display(),
                result
                    .lints
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            lint_codes_seen.insert(code.clone());
        }
        files += 1;
    }
    assert!(files >= 13, "expected >= 13 corpus files, found {files}");
    // One file per reachable obligation kind, at minimum.
    for code in (1..=13).map(|n| format!("R{n:04}")) {
        assert!(codes_seen.contains(&code), "no corpus file pins {code}");
    }
    // And one per lint code.
    for code in (1..=4).map(|n| format!("L{n:04}")) {
        assert!(
            lint_codes_seen.contains(&code),
            "no corpus file pins {code}"
        );
    }
}
